// Differential suite for the fuzzy (approximate) query subsystem:
// QueryFuzzy / QueryFuzzyBatch pinned against the BruteForceFuzzy oracle
// across tree, compact and sharded modes via the randomized property sweep
// in test_util.h, plus named pinning tests for every degenerate input.
//
// Correlated sweep cells keep patterns short (m <= 3, so every variant
// window of length <= m + k stays within the short-depth limit K): the
// short-query extraction path is exact for correlated windows at any depth,
// which is the regime the fuzzy paths are specified over.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/fuzzy.h"
#include "core/substring_index.h"
#include "engine/sharded_index.h"
#include "test_util.h"

namespace pti {
namespace {

// Bit-identical match lists: positions and probabilities exactly equal.
bool IdenticalMatches(const std::vector<Match>& a,
                      const std::vector<Match>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].position == b[i].position &&
          a[i].probability == b[i].probability)) {
      return false;
    }
  }
  return true;
}

void ExpectFuzzySameAsOracle(const SubstringIndex& index,
                             const UncertainString& s,
                             const std::string& pattern, double tau,
                             const FuzzyParams& params,
                             const std::string& label) {
  std::vector<Match> got;
  ASSERT_TRUE(index.QueryFuzzy(pattern, tau, params, &got).ok())
      << label << " pattern '" << pattern << "'";
  const std::vector<Match> want = BruteForceFuzzy(s, pattern, tau, params);
  EXPECT_TRUE(test::SameMatches(got, want))
      << label << " pattern '" << pattern << "' tau " << tau << " k "
      << params.k << " metric " << static_cast<int>(params.metric)
      << "\n  got:  " << test::MatchesToString(got)
      << "\n  want: " << test::MatchesToString(want);
}

void ExpectShardedFuzzySameAsOracle(const ShardedIndex& index,
                                    const UncertainString& s,
                                    const std::string& pattern, double tau,
                                    const FuzzyParams& params,
                                    const std::string& label) {
  std::vector<Match> got;
  ASSERT_TRUE(index.QueryFuzzy(pattern, tau, params, &got).ok())
      << label << " pattern '" << pattern << "'";
  const std::vector<Match> want = BruteForceFuzzy(s, pattern, tau, params);
  EXPECT_TRUE(test::SameMatches(got, want))
      << label << " (sharded) pattern '" << pattern << "' tau " << tau
      << " k " << params.k << " metric " << static_cast<int>(params.metric)
      << "\n  got:  " << test::MatchesToString(got)
      << "\n  want: " << test::MatchesToString(want);
}

// Patterns for one sweep cell: a healthy mix of likely-occurring (sampled
// from the string) and random ones. Correlated cells stay short (see the
// file comment); uncorrelated ones stretch into the long-pattern regime.
std::vector<std::string> SweepPatterns(const test::SweepConfig& config,
                                       int count) {
  Rng rng(config.seed * 31 + 7);
  const size_t max_len = config.num_correlations > 0 ? 3 : 6;
  std::vector<std::string> patterns;
  for (int q = 0; q < count; ++q) {
    const size_t len = 1 + rng.Uniform(max_len);
    if (q % 3 == 0) {
      patterns.push_back(
          test::RandomPattern(config.alphabet, len, rng.Next()));
    } else {
      const int64_t start =
          static_cast<int64_t>(rng.Uniform(config.s.size() - len + 1));
      patterns.push_back(
          test::PatternFromString(config.s, start, len, rng.Next()));
    }
  }
  return patterns;
}

constexpr double kSweepTaus[] = {0.05, 0.2, 0.5};
constexpr FuzzyMetric kMetrics[] = {FuzzyMetric::kMismatch,
                                    FuzzyMetric::kEdit};

TEST(FuzzyDifferentialTest, TreeModeMatchesOracle) {
  test::PropertySweepSpec spec;
  test::RunPropertySweep(spec, [](const test::SweepConfig& config) {
    IndexOptions options;
    options.transform.tau_min = 0.05;
    const auto index = SubstringIndex::Build(config.s, options);
    ASSERT_TRUE(index.ok()) << config.label;
    for (const std::string& pattern : SweepPatterns(config, 6)) {
      for (const double tau : kSweepTaus) {
        for (const FuzzyMetric metric : kMetrics) {
          for (int32_t k = 0; k <= kMaxFuzzyErrors; ++k) {
            ExpectFuzzySameAsOracle(*index, config.s, pattern, tau,
                                    {k, metric}, config.label);
          }
        }
      }
    }
  });
}

TEST(FuzzyDifferentialTest, CompactModeMatchesOracle) {
  test::PropertySweepSpec spec;
  spec.base_seed = 2;
  test::RunPropertySweep(spec, [](const test::SweepConfig& config) {
    IndexOptions options;
    options.transform.tau_min = 0.05;
    options.compact = true;
    const auto index = SubstringIndex::Build(config.s, options);
    ASSERT_TRUE(index.ok()) << config.label;
    for (const std::string& pattern : SweepPatterns(config, 6)) {
      for (const double tau : kSweepTaus) {
        for (const FuzzyMetric metric : kMetrics) {
          for (int32_t k = 0; k <= kMaxFuzzyErrors; ++k) {
            ExpectFuzzySameAsOracle(*index, config.s, pattern, tau,
                                    {k, metric}, config.label);
          }
        }
      }
    }
  });
}

TEST(FuzzyDifferentialTest, ShardedMatchesOracleAcrossOverlaps) {
  test::PropertySweepSpec spec;
  spec.base_seed = 3;
  spec.alphabets = {2, 3};  // sharded builds are pricier; trim the grid
  test::RunPropertySweep(spec, [](const test::SweepConfig& config) {
    // Sweep the shard overlap: 8 comfortably covers every variant length
    // (max pattern 6 + k 2); 12 exercises wider slices, and the second
    // config flips to compact shards with a different shard count.
    const struct {
      int32_t num_shards;
      int32_t overlap;
      bool compact;
    } layouts[] = {{3, 8, false}, {4, 12, true}};
    for (const auto& layout : layouts) {
      ShardedIndexOptions options;
      options.index.transform.tau_min = 0.05;
      options.index.compact = layout.compact;
      options.num_shards = layout.num_shards;
      options.overlap = layout.overlap;
      options.num_threads = 2;
      const auto index = ShardedIndex::Build(config.s, options);
      ASSERT_TRUE(index.ok()) << config.label;
      for (const std::string& pattern : SweepPatterns(config, 4)) {
        for (const double tau : kSweepTaus) {
          for (const FuzzyMetric metric : kMetrics) {
            for (int32_t k = 0; k <= kMaxFuzzyErrors; ++k) {
              ExpectShardedFuzzySameAsOracle(*index, config.s, pattern, tau,
                                             {k, metric}, config.label);
            }
          }
        }
      }
    }
  });
}

TEST(FuzzyDifferentialTest, KZeroIsBitIdenticalToExactQuery) {
  test::PropertySweepSpec spec;
  spec.base_seed = 4;
  spec.strings_per_config = 1;
  test::RunPropertySweep(spec, [](const test::SweepConfig& config) {
    for (const bool compact : {false, true}) {
      IndexOptions options;
      options.transform.tau_min = 0.05;
      options.compact = compact;
      const auto index = SubstringIndex::Build(config.s, options);
      ASSERT_TRUE(index.ok()) << config.label;
      for (const std::string& pattern : SweepPatterns(config, 6)) {
        for (const double tau : kSweepTaus) {
          std::vector<Match> exact;
          ASSERT_TRUE(index->Query(pattern, tau, &exact).ok());
          for (const FuzzyMetric metric : kMetrics) {
            std::vector<Match> fuzzy;
            ASSERT_TRUE(
                index->QueryFuzzy(pattern, tau, {0, metric}, &fuzzy).ok());
            EXPECT_TRUE(IdenticalMatches(exact, fuzzy))
                << config.label << " compact=" << compact << " pattern '"
                << pattern << "' tau " << tau
                << "\n  exact: " << test::MatchesToString(exact)
                << "\n  fuzzy: " << test::MatchesToString(fuzzy);
          }
        }
      }
    }
  });
}

TEST(FuzzyDifferentialTest, BatchEqualsPerQueryLoop) {
  test::PropertySweepSpec spec;
  spec.base_seed = 5;
  spec.alphabets = {3};
  test::RunPropertySweep(spec, [](const test::SweepConfig& config) {
    for (const bool compact : {false, true}) {
      IndexOptions options;
      options.transform.tau_min = 0.05;
      options.compact = compact;
      const auto index = SubstringIndex::Build(config.s, options);
      ASSERT_TRUE(index.ok()) << config.label;
      // A batch mixing shared patterns at different taus/k (exercising the
      // group-collapse path), k = 0 members, and both metrics.
      std::vector<FuzzyBatchQuery> batch;
      const auto patterns = SweepPatterns(config, 3);
      for (const std::string& pattern : patterns) {
        for (const double tau : kSweepTaus) {
          batch.push_back({pattern, tau, {1, FuzzyMetric::kMismatch}});
          batch.push_back({pattern, tau, {2, FuzzyMetric::kEdit}});
          batch.push_back({pattern, tau, {0, FuzzyMetric::kMismatch}});
        }
      }
      std::vector<std::vector<Match>> got;
      ASSERT_TRUE(index->QueryFuzzyBatch(batch, &got).ok()) << config.label;
      ASSERT_EQ(got.size(), batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        std::vector<Match> want;
        ASSERT_TRUE(index
                        ->QueryFuzzy(batch[i].pattern, batch[i].tau,
                                     batch[i].params, &want)
                        .ok());
        EXPECT_TRUE(IdenticalMatches(got[i], want))
            << config.label << " compact=" << compact << " batch entry " << i
            << " pattern '" << batch[i].pattern << "'"
            << "\n  batch: " << test::MatchesToString(got[i])
            << "\n  loop:  " << test::MatchesToString(want);
      }
    }
  });
}

TEST(FuzzyDifferentialTest, ShardedBatchEqualsPerQueryLoop) {
  test::RandomStringSpec rs{.length = 50, .alphabet = 3, .seed = 71};
  const UncertainString s = test::RandomUncertain(rs);
  ShardedIndexOptions options;
  options.index.transform.tau_min = 0.05;
  options.num_shards = 3;
  options.overlap = 8;
  options.num_threads = 2;
  const auto index = ShardedIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::vector<FuzzyBatchQuery> batch;
  Rng rng(73);
  for (int q = 0; q < 12; ++q) {
    const size_t len = 1 + rng.Uniform(5);
    const std::string pattern = test::RandomPattern(3, len, rng.Next());
    batch.push_back({pattern, 0.05 + 0.15 * (q % 3),
                     {static_cast<int32_t>(q % 3),
                      (q % 2) ? FuzzyMetric::kEdit : FuzzyMetric::kMismatch}});
  }
  std::vector<std::vector<Match>> got;
  ASSERT_TRUE(index->QueryFuzzyBatch(batch, &got).ok());
  ASSERT_EQ(got.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    std::vector<Match> want;
    ASSERT_TRUE(
        index->QueryFuzzy(batch[i].pattern, batch[i].tau, batch[i].params,
                          &want)
            .ok());
    EXPECT_TRUE(IdenticalMatches(got[i], want)) << "batch entry " << i;
  }
}

// ---- Degenerate-input pinning tests -------------------------------------

class FuzzyDegenerateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    test::RandomStringSpec rs{.length = 12, .alphabet = 3, .seed = 91};
    s_ = test::RandomUncertain(rs);
    IndexOptions options;
    options.transform.tau_min = 0.05;
    auto tree = SubstringIndex::Build(s_, options);
    ASSERT_TRUE(tree.ok());
    tree_ = std::move(tree).value();
    options.compact = true;
    auto compact = SubstringIndex::Build(s_, options);
    ASSERT_TRUE(compact.ok());
    compact_ = std::move(compact).value();
  }

  UncertainString s_;
  SubstringIndex tree_;
  SubstringIndex compact_;
};

TEST_F(FuzzyDegenerateTest, KAtLeastPatternLength) {
  // k >= m: every position is a candidate (under kEdit any single present
  // character is an admissible variant). Both modes must still equal the
  // oracle exactly.
  for (const SubstringIndex* index : {&tree_, &compact_}) {
    for (const FuzzyMetric metric : kMetrics) {
      ExpectFuzzySameAsOracle(*index, s_, "ab", 0.1, {2, metric},
                              "k >= pattern length");
      ExpectFuzzySameAsOracle(*index, s_, "a", 0.1, {2, metric},
                              "k > pattern length");
      ExpectFuzzySameAsOracle(*index, s_, "a", 0.1, {1, metric},
                              "k == pattern length");
    }
  }
}

TEST_F(FuzzyDegenerateTest, EmptyPatternFails) {
  std::vector<Match> out;
  for (const SubstringIndex* index : {&tree_, &compact_}) {
    const Status st = index->QueryFuzzy("", 0.5, {1, FuzzyMetric::kEdit},
                                        &out);
    EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  }
  // The oracle agrees: an empty pattern matches nowhere.
  EXPECT_TRUE(BruteForceFuzzy(s_, "", 0.5, {1, FuzzyMetric::kEdit}).empty());
}

TEST_F(FuzzyDegenerateTest, PatternLongerThanText) {
  // 13 > n = 12. Under kMismatch no window fits; under kEdit with k
  // deletions a pattern up to n + k still has admissible variants.
  const std::string just_over = test::RandomPattern(3, 13, 97);
  for (const SubstringIndex* index : {&tree_, &compact_}) {
    ExpectFuzzySameAsOracle(*index, s_, just_over, 0.05,
                            {2, FuzzyMetric::kMismatch},
                            "pattern longer than text, mismatch");
    ExpectFuzzySameAsOracle(*index, s_, just_over, 0.05,
                            {2, FuzzyMetric::kEdit},
                            "pattern longer than text, edit");
    std::vector<Match> out;
    ASSERT_TRUE(index
                    ->QueryFuzzy(just_over, 0.05, {2, FuzzyMetric::kMismatch},
                                 &out)
                    .ok());
    EXPECT_TRUE(out.empty());
  }
  // Deterministic pin of the edit-with-deletions case: a pattern one longer
  // than the text matches when dropping one character yields the text.
  UncertainString tiny = UncertainString::FromDeterministic("abc");
  IndexOptions options;
  options.transform.tau_min = 0.05;
  for (const bool compact : {false, true}) {
    options.compact = compact;
    const auto index = SubstringIndex::Build(tiny, options);
    ASSERT_TRUE(index.ok());
    std::vector<Match> out;
    ASSERT_TRUE(
        index->QueryFuzzy("abcd", 0.5, {1, FuzzyMetric::kEdit}, &out).ok());
    ASSERT_EQ(out.size(), 1u) << "compact=" << compact;
    EXPECT_EQ(out[0].position, 0);
    EXPECT_EQ(out[0].probability, 1.0);
  }
}

TEST_F(FuzzyDegenerateTest, TauBoundaries) {
  std::vector<Match> out;
  for (const SubstringIndex* index : {&tree_, &compact_}) {
    // tau = 0 and tau > 1 are invalid, exactly as for the exact query.
    EXPECT_TRUE(index->QueryFuzzy("ab", 0.0, {1, FuzzyMetric::kMismatch}, &out)
                    .IsInvalidArgument());
    EXPECT_TRUE(index->QueryFuzzy("ab", 1.5, {1, FuzzyMetric::kMismatch}, &out)
                    .IsInvalidArgument());
    // tau = 1 is the tight upper boundary: valid, and only certain variants
    // qualify — pin against the oracle.
    ExpectFuzzySameAsOracle(*index, s_, "ab", 1.0, {1, FuzzyMetric::kEdit},
                            "tau == 1");
    // tau below the construction-time tau_min is rejected.
    EXPECT_TRUE(index->QueryFuzzy("ab", 0.01, {1, FuzzyMetric::kMismatch}, &out)
                    .IsInvalidArgument());
    // tau exactly at tau_min is the lower boundary and must work.
    ExpectFuzzySameAsOracle(*index, s_, "ab", 0.05, {1, FuzzyMetric::kMismatch},
                            "tau == tau_min");
  }
}

TEST_F(FuzzyDegenerateTest, KZeroEqualsExactQueryBitwise) {
  for (const SubstringIndex* index : {&tree_, &compact_}) {
    std::vector<Match> exact, fuzzy;
    ASSERT_TRUE(index->Query("ab", 0.1, &exact).ok());
    ASSERT_TRUE(
        index->QueryFuzzy("ab", 0.1, {0, FuzzyMetric::kMismatch}, &fuzzy).ok());
    EXPECT_TRUE(IdenticalMatches(exact, fuzzy));
    ASSERT_TRUE(
        index->QueryFuzzy("ab", 0.1, {0, FuzzyMetric::kEdit}, &fuzzy).ok());
    EXPECT_TRUE(IdenticalMatches(exact, fuzzy));
  }
}

TEST_F(FuzzyDegenerateTest, InvalidParamsRejected) {
  std::vector<Match> out;
  EXPECT_TRUE(tree_.QueryFuzzy("ab", 0.1, {-1, FuzzyMetric::kMismatch}, &out)
                  .IsInvalidArgument());
  const Status st =
      tree_.QueryFuzzy("ab", 0.1, {kMaxFuzzyErrors + 1, FuzzyMetric::kEdit},
                       &out);
  EXPECT_TRUE(st.IsNotSupported()) << st.ToString();
  // Batch validation fails before any query runs, with the entry index.
  std::vector<FuzzyBatchQuery> batch = {
      {"ab", 0.1, {1, FuzzyMetric::kMismatch}},
      {"ab", 0.1, {7, FuzzyMetric::kMismatch}}};
  std::vector<std::vector<Match>> outs;
  const Status bst = tree_.QueryFuzzyBatch(batch, &outs);
  EXPECT_TRUE(bst.IsNotSupported());
  EXPECT_NE(bst.message().find("batch query #1"), std::string::npos)
      << bst.message();
}

TEST(FuzzyShardedLimitsTest, OverlapWidensByK) {
  test::RandomStringSpec rs{.length = 40, .alphabet = 3, .seed = 101};
  const UncertainString s = test::RandomUncertain(rs);
  ShardedIndexOptions options;
  options.index.transform.tau_min = 0.05;
  options.num_shards = 3;
  options.overlap = 6;  // supports exact patterns up to 7
  const auto index = ShardedIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  const std::string p7 = test::RandomPattern(3, 7, 103);
  std::vector<Match> out;
  // Exact and mismatch queries accept the full overlap+1 length...
  EXPECT_TRUE(index->Query(p7, 0.1, &out).ok());
  EXPECT_TRUE(
      index->QueryFuzzy(p7, 0.1, {2, FuzzyMetric::kMismatch}, &out).ok());
  // ...but kEdit variants can grow by k, so the limit tightens.
  const Status st = index->QueryFuzzy(p7, 0.1, {2, FuzzyMetric::kEdit}, &out);
  EXPECT_TRUE(st.IsNotSupported()) << st.ToString();
  EXPECT_NE(st.message().find("widened by k=2"), std::string::npos)
      << st.message();
  // Length 5 + k 2 == overlap + 1 == 7 is the tight admissible boundary.
  const std::string p5 = test::RandomPattern(3, 5, 107);
  EXPECT_TRUE(index->QueryFuzzy(p5, 0.1, {2, FuzzyMetric::kEdit}, &out).ok());
}

TEST(FuzzyOracleTest, MatchesPossibleWorldSemantics) {
  // First-principles pin on a tiny string: FuzzyOccurrenceProb must equal
  // the max over admissible variants of the exact occurrence probability.
  UncertainString s;
  s.AddPosition({{'a', 0.75}, {'b', 0.25}});
  s.AddPosition({{'b', 0.5}, {'c', 0.5}});
  s.AddPosition({{'a', 1.0}});
  // Pattern "aa", k = 1 mismatch at position 0: variants present at 0 are
  // "ab" (0.75 * 0.5), "ac" (0.75 * 0.5), "ba" (absent 'a' at 1 — no), and
  // "aa" itself has no 'a' at position 1. Best: 0.375.
  const LogProb p =
      FuzzyOccurrenceProb(s, "aa", 0, {1, FuzzyMetric::kMismatch});
  EXPECT_NEAR(p.ToLinear(), 0.375, 1e-12);
  // k = 1 edit at position 1: deleting one 'a' leaves "a", matched by
  // position 2's certain 'a'... but a length-1 variant at position 1 must
  // match position 1: best is 'b' or 'c' (0.5) via substitution+deletion?
  // Two edits — not admissible. Inserting before: "ba"/"ca" = 0.5 * 1.0.
  const LogProb q = FuzzyOccurrenceProb(s, "aa", 1, {1, FuzzyMetric::kEdit});
  EXPECT_NEAR(q.ToLinear(), 0.5, 1e-12);
}

}  // namespace
}  // namespace pti
