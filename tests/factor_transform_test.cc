// Property tests for the Lemma 2 factor transformation (DESIGN.md §2.2):
//
//   Coverage:  every occurrence (i, p) with Pr >= tau_min appears inside an
//              emitted factor at alignment i with matching characters.
//   Soundness: every window of every factor is a real occurrence in S whose
//              probability is at least the window's stored product.
//   Maximality/size: factors cannot be extended, no exact duplicates, and
//              the total length stays within the O((1/tau)^2 n) regime.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/factor_transform.h"
#include "test_util.h"

namespace pti {
namespace {

// Enumerates all valid occurrences (start, string) with Pr >= tau by DFS.
void AllValidOccurrences(const UncertainString& s, double tau,
                         std::map<std::pair<int64_t, std::string>, double>* out) {
  const LogProb log_tau = LogProb::FromLinear(tau);
  for (int64_t i = 0; i < s.size(); ++i) {
    // BFS over growing strings from position i.
    std::vector<std::string> frontier = {""};
    while (!frontier.empty()) {
      std::vector<std::string> next;
      for (const std::string& w : frontier) {
        const int64_t at = i + static_cast<int64_t>(w.size());
        if (at >= s.size()) continue;
        for (const CharOption& opt : s.options(at)) {
          const std::string w2 = w + static_cast<char>(opt.ch);
          const LogProb p = s.OccurrenceProb(w2, i);
          if (p.MeetsThreshold(log_tau)) {
            (*out)[{i, w2}] = p.ToLinear();
            next.push_back(w2);
          }
        }
      }
      frontier = std::move(next);
    }
  }
}

// Extracts factor k as (start position, characters).
std::pair<int64_t, std::string> GetFactor(const FactorSet& fs, int32_t k) {
  const size_t begin = fs.text.MemberBegin(k);
  const size_t end = fs.text.MemberEnd(k);
  std::string chars;
  for (size_t q = begin; q < end; ++q) {
    chars.push_back(static_cast<char>(fs.text.chars()[q]));
  }
  return {fs.pos[begin], chars};
}

void CheckCoverageAndSoundness(const UncertainString& s, double tau_min) {
  TransformOptions options;
  options.tau_min = tau_min;
  const auto fs = TransformToFactors(s, options);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();

  // Soundness: every factor window is a valid occurrence.
  const LogProb log_tau = LogProb::FromLinear(tau_min);
  std::set<std::pair<int64_t, std::string>> factor_windows;
  for (int32_t k = 0; k < fs->text.num_members(); ++k) {
    const auto [start, chars] = GetFactor(*fs, k);
    const LogProb full = s.OccurrenceProb(chars, start);
    EXPECT_TRUE(full.MeetsThreshold(log_tau))
        << "factor (" << start << ", " << chars << ") has prob "
        << full.ToLinear();
    for (size_t a = 0; a < chars.size(); ++a) {
      for (size_t len = 1; a + len <= chars.size(); ++len) {
        factor_windows.insert(
            {start + static_cast<int64_t>(a), chars.substr(a, len)});
      }
    }
    // Pos array is contiguous within the factor.
    const size_t begin = fs->text.MemberBegin(k);
    for (size_t q = begin; q < fs->text.MemberEnd(k); ++q) {
      EXPECT_EQ(fs->pos[q], start + static_cast<int64_t>(q - begin));
    }
  }

  // Coverage: every valid occurrence appears among the factor windows.
  std::map<std::pair<int64_t, std::string>, double> valid;
  AllValidOccurrences(s, tau_min, &valid);
  for (const auto& [occ, prob] : valid) {
    EXPECT_TRUE(factor_windows.count(occ))
        << "missing occurrence (" << occ.first << ", " << occ.second
        << ") with prob " << prob;
  }
}

TEST(FactorTransformTest, DeterministicStringYieldsSingleFactor) {
  const UncertainString s = UncertainString::FromDeterministic("abcabcabc");
  TransformOptions options;
  options.tau_min = 0.1;
  const auto fs = TransformToFactors(s, options);
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ(fs->num_factors(), 1u);
  EXPECT_EQ(GetFactor(*fs, 0), (std::pair<int64_t, std::string>{0, "abcabcabc"}));
}

TEST(FactorTransformTest, PaperFigure10Example) {
  // §Appendix B: S = {Q.7 S.3} {Q.3 P.7} {P 1} {A.4 F.3 P.2 Q.1}.
  UncertainString s;
  s.AddPosition({{'Q', 0.7}, {'S', 0.3}});
  s.AddPosition({{'Q', 0.3}, {'P', 0.7}});
  s.AddPosition({{'P', 1.0}});
  s.AddPosition({{'A', 0.4}, {'F', 0.3}, {'P', 0.2}, {'Q', 0.1}});
  CheckCoverageAndSoundness(s, 0.1);
  // The paper's Figure 10 lists factors covering e.g. "QPPA" (prob .7*.7*1*.4
  // = .196 >= .1) and "QP" occurrences; verify flagship windows exist.
  TransformOptions options;
  options.tau_min = 0.1;
  const auto fs = TransformToFactors(s, options);
  ASSERT_TRUE(fs.ok());
  std::set<std::string> factors;
  for (int32_t k = 0; k < fs->text.num_members(); ++k) {
    factors.insert(GetFactor(*fs, k).second);
  }
  EXPECT_TRUE(factors.count("QPPA")) << "factors present:";
  EXPECT_TRUE(factors.count("QPPF"));
}

TEST(FactorTransformTest, InvalidTauRejected) {
  const UncertainString s = UncertainString::FromDeterministic("ab");
  TransformOptions options;
  options.tau_min = 0.0;
  EXPECT_TRUE(TransformToFactors(s, options).status().IsInvalidArgument());
  options.tau_min = 1.5;
  EXPECT_TRUE(TransformToFactors(s, options).status().IsInvalidArgument());
}

TEST(FactorTransformTest, InvalidStringRejected) {
  UncertainString s;
  s.AddPosition({{'a', 0.5}, {'b', 0.3}});
  TransformOptions options;
  EXPECT_TRUE(TransformToFactors(s, options).status().IsInvalidArgument());
}

TEST(FactorTransformTest, BudgetEnforced) {
  test::RandomStringSpec spec{.length = 200, .alphabet = 4, .theta = 0.8,
                              .max_choices = 4, .seed = 9};
  const UncertainString s = test::RandomUncertain(spec);
  TransformOptions options;
  options.tau_min = 0.05;
  options.max_total_length = 16;
  EXPECT_TRUE(TransformToFactors(s, options).status().IsResourceExhausted());
}

TEST(FactorTransformTest, EmptyString) {
  TransformOptions options;
  const auto fs = TransformToFactors(UncertainString(), options);
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ(fs->num_factors(), 0u);
  EXPECT_EQ(fs->total_length(), 0u);
}

TEST(FactorTransformTest, AllCharsBelowTauYieldNoFactors) {
  UncertainString s;
  for (int i = 0; i < 5; ++i) {
    s.AddPosition({{'a', 0.25}, {'b', 0.25}, {'c', 0.25}, {'d', 0.25}});
  }
  TransformOptions options;
  options.tau_min = 0.5;
  const auto fs = TransformToFactors(s, options);
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ(fs->num_factors(), 0u);
}

TEST(FactorTransformTest, TauOneKeepsOnlyCertainRuns) {
  UncertainString s;
  s.AddPosition({{'a', 1.0}});
  s.AddPosition({{'b', 1.0}});
  s.AddPosition({{'c', 0.5}, {'d', 0.5}});
  s.AddPosition({{'e', 1.0}});
  TransformOptions options;
  options.tau_min = 1.0;
  const auto fs = TransformToFactors(s, options);
  ASSERT_TRUE(fs.ok());
  std::set<std::pair<int64_t, std::string>> got;
  for (int32_t k = 0; k < fs->text.num_members(); ++k) {
    got.insert(GetFactor(*fs, k));
  }
  EXPECT_EQ(got, (std::set<std::pair<int64_t, std::string>>{{0, "ab"},
                                                            {3, "e"}}));
}

TEST(FactorTransformTest, NoDuplicateFactors) {
  test::RandomStringSpec spec{.length = 40, .alphabet = 3, .theta = 0.6,
                              .seed = 21};
  const UncertainString s = test::RandomUncertain(spec);
  TransformOptions options;
  options.tau_min = 0.15;
  const auto fs = TransformToFactors(s, options);
  ASSERT_TRUE(fs.ok());
  std::set<std::pair<int64_t, std::string>> seen;
  for (int32_t k = 0; k < fs->text.num_members(); ++k) {
    EXPECT_TRUE(seen.insert(GetFactor(*fs, k)).second) << "duplicate factor";
  }
}

TEST(FactorTransformTest, FactorsAreBidirectionallyMaximal) {
  test::RandomStringSpec spec{.length = 30, .alphabet = 3, .theta = 0.5,
                              .seed = 33};
  const UncertainString s = test::RandomUncertain(spec);
  TransformOptions options;
  options.tau_min = 0.2;
  const auto fs = TransformToFactors(s, options);
  ASSERT_TRUE(fs.ok());
  const LogProb log_tau = LogProb::FromLinear(options.tau_min);
  for (int32_t k = 0; k < fs->text.num_members(); ++k) {
    const auto [start, chars] = GetFactor(*fs, k);
    const int64_t end = start + static_cast<int64_t>(chars.size());
    // Right extension by any character fails.
    if (end < s.size()) {
      for (const CharOption& opt : s.options(end)) {
        const std::string ext = chars + static_cast<char>(opt.ch);
        EXPECT_FALSE(s.OccurrenceProb(ext, start).MeetsThreshold(log_tau))
            << "factor extendable right: " << ext;
      }
    }
    // Left extension by any character fails.
    if (start > 0) {
      for (const CharOption& opt : s.options(start - 1)) {
        const std::string ext = static_cast<char>(opt.ch) + chars;
        EXPECT_FALSE(s.OccurrenceProb(ext, start - 1).MeetsThreshold(log_tau))
            << "factor extendable left: " << ext;
      }
    }
  }
}

class FactorPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double, double, int>> {};

TEST_P(FactorPropertyTest, CoverageAndSoundness) {
  const auto [length, theta, tau_min, seed] = GetParam();
  test::RandomStringSpec spec;
  spec.length = length;
  spec.theta = theta;
  spec.seed = static_cast<uint64_t>(seed);
  spec.alphabet = 3;
  CheckCoverageAndSoundness(test::RandomUncertain(spec), tau_min);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FactorPropertyTest,
    ::testing::Combine(::testing::Values(8, 16, 28),
                       ::testing::Values(0.2, 0.5, 0.9),
                       ::testing::Values(0.6, 0.3, 0.12),
                       ::testing::Values(1, 2, 3, 4)));

TEST(FactorTransformTest, CorrelatedCoverageUsesOptimisticBound) {
  // A correlated character whose pr+ exceeds its marginal must still be
  // coverable: enumeration uses max(pr+, pr-).
  UncertainString s;
  s.AddPosition({{'x', 0.5}, {'y', 0.5}});
  s.AddPosition({{'z', 1.0}});
  ASSERT_TRUE(s.AddCorrelation({.pos = 1, .ch = 'z', .dep_pos = 0,
                                .dep_ch = 'x', .prob_if_present = 0.9,
                                .prob_if_absent = 0.05})
                  .ok());
  TransformOptions options;
  options.tau_min = 0.4;  // xz has prob .5*.9 = .45 >= .4; marginal of z is
                          // .475 but yz = .5*.05 = .025 < .4
  const auto fs = TransformToFactors(s, options);
  ASSERT_TRUE(fs.ok());
  std::set<std::pair<int64_t, std::string>> windows;
  for (int32_t k = 0; k < fs->text.num_members(); ++k) {
    const auto [start, chars] = GetFactor(*fs, k);
    for (size_t a = 0; a < chars.size(); ++a) {
      for (size_t len = 1; a + len <= chars.size(); ++len) {
        windows.insert({start + static_cast<int64_t>(a), chars.substr(a, len)});
      }
    }
  }
  EXPECT_TRUE(windows.count({0, "xz"}));
}

TEST(FactorTransformTest, SizeStaysLinearishOnUniformHalves) {
  // All-0.5 positions, tau = 0.1: valid windows have length <= 3, so factors
  // are short and total length is bounded by ~ (choices^3+...) * n, far
  // below the (1/tau)^2 * n = 100n bound.
  UncertainString s;
  for (int i = 0; i < 50; ++i) s.AddPosition({{'a', 0.5}, {'b', 0.5}});
  TransformOptions options;
  options.tau_min = 0.1;
  const auto fs = TransformToFactors(s, options);
  ASSERT_TRUE(fs.ok());
  EXPECT_LE(fs->total_length(),
            100 * static_cast<size_t>(s.size()));
  // Every factor has length exactly 3 here (0.125 >= 0.1 > 0.0625).
  for (int32_t k = 0; k < fs->text.num_members(); ++k) {
    EXPECT_EQ(GetFactor(*fs, k).second.size(), 3u);
  }
}

}  // namespace
}  // namespace pti
