// engine/sharded_index.h: shard-boundary correctness (patterns straddling
// every shard edge at every offset of the overlap window), threshold
// semantics at/below tau_min, randomized agreement against both the
// monolithic SubstringIndex and the brute-force oracle, correlation rules
// crossing shard boundaries, parallel-vs-serial build determinism, and
// Save/Load round-trips of the "SHRD" container.

#include "engine/sharded_index.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/substring_index.h"
#include "test_util.h"

namespace pti {
namespace {

void ExpectAgreesWithOracle(const ShardedIndex& index,
                            const UncertainString& s,
                            const std::string& pattern, double tau) {
  std::vector<Match> got;
  ASSERT_TRUE(index.Query(pattern, tau, &got).ok()) << pattern;
  const std::vector<Match> want = BruteForceSearch(s, pattern, tau);
  EXPECT_TRUE(test::SameMatches(got, want))
      << "pattern '" << pattern << "' tau " << tau << "\n  got:  "
      << test::MatchesToString(got) << "\n  want: "
      << test::MatchesToString(want);
}

TEST(ShardedIndexTest, WorkedExampleAcrossShards) {
  // The paper's Appendix B string, split into two shards of two positions:
  // ("QP", 0.2) matches at 0 (0.49) and 1 (0.3). Position 1 is owned by
  // shard 0 but its window reaches into shard 1's territory, so it can only
  // be validated through shard 0's one-character overlap.
  UncertainString s;
  s.AddPosition({{'Q', 0.7}, {'S', 0.3}});
  s.AddPosition({{'Q', 0.3}, {'P', 0.7}});
  s.AddPosition({{'P', 1.0}});
  s.AddPosition({{'A', 0.4}, {'F', 0.3}, {'P', 0.2}, {'Q', 0.1}});
  ShardedIndexOptions options;
  options.index.transform.tau_min = 0.1;
  options.num_shards = 2;
  options.overlap = 1;
  const auto index = ShardedIndex::Build(s, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->num_shards(), 2);
  std::vector<Match> out;
  ASSERT_TRUE(index->Query("QP", 0.2, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].position, 0);
  EXPECT_NEAR(out[0].probability, 0.49, 1e-12);
  EXPECT_EQ(out[1].position, 1);
  EXPECT_NEAR(out[1].probability, 0.3, 1e-12);
}

TEST(ShardedIndexTest, StraddlingPatternsAtEveryOverlapOffset) {
  test::RandomStringSpec spec;
  spec.length = 64;
  spec.alphabet = 3;
  spec.theta = 0.4;
  spec.seed = 5;
  const UncertainString s = test::RandomUncertain(spec);

  ShardedIndexOptions options;
  options.index.transform.tau_min = 0.05;
  options.num_shards = 4;  // begins at 0, 16, 32, 48
  options.overlap = 7;     // patterns up to 8 characters
  const auto index = ShardedIndex::Build(s, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  ASSERT_EQ(index->num_shards(), 4);

  // Every pattern length up to overlap+1, starting at every position that
  // makes the window straddle (or touch) a shard edge — all offsets of the
  // overlap window on both sides of every boundary.
  for (int32_t k = 1; k < index->num_shards(); ++k) {
    const int64_t edge = index->shard_begin(k);
    for (int64_t len = 1; len <= options.overlap + 1; ++len) {
      for (int64_t start = edge - len; start <= edge + len; ++start) {
        if (start < 0 || start + len > s.size()) continue;
        const std::string pattern = test::PatternFromString(
            s, start, static_cast<size_t>(len),
            static_cast<uint64_t>(edge * 1000 + start * 10 + len));
        ExpectAgreesWithOracle(*index, s, pattern, 0.05);
        ExpectAgreesWithOracle(*index, s, pattern, 0.25);
      }
    }
  }
}

TEST(ShardedIndexTest, TauAtAndBelowTauMin) {
  test::RandomStringSpec spec;
  spec.length = 40;
  spec.seed = 9;
  const UncertainString s = test::RandomUncertain(spec);
  ShardedIndexOptions options;
  options.index.transform.tau_min = 0.125;  // exactly representable
  options.num_shards = 3;
  options.overlap = 4;
  const auto index = ShardedIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  const std::string pattern = test::PatternFromString(s, 14, 3, 2);
  std::vector<Match> out;
  // tau == tau_min is served.
  ASSERT_TRUE(index->Query(pattern, 0.125, &out).ok());
  ExpectAgreesWithOracle(*index, s, pattern, 0.125);
  // tau below tau_min is rejected, exactly like the monolithic index.
  EXPECT_TRUE(index->Query(pattern, 0.1, &out).IsInvalidArgument());
  EXPECT_TRUE(index->Query(pattern, 0.0, &out).IsInvalidArgument());
  EXPECT_TRUE(index->Query(pattern, 1.5, &out).IsInvalidArgument());
  EXPECT_TRUE(index->Query("", 0.5, &out).IsInvalidArgument());
}

TEST(ShardedIndexTest, PatternLengthLimits) {
  const UncertainString s = UncertainString::FromDeterministic(
      "abcabcabcabcabcabcabcabc");  // 24 positions
  ShardedIndexOptions options;
  options.num_shards = 3;
  options.overlap = 5;
  const auto index = ShardedIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  // Up to overlap+1 = 6 characters: served.
  ASSERT_TRUE(index->Query("abcabc", 0.5, &out).ok());
  EXPECT_FALSE(out.empty());
  // Longer than the overlap supports but not longer than the string:
  // NotSupported with a rebuild hint.
  const Status st = index->Query("abcabca", 0.5, &out);
  EXPECT_TRUE(st.IsNotSupported());
  EXPECT_NE(st.message().find("overlap"), std::string::npos);
  // Longer than the whole string: trivially empty, like the monolithic
  // index — not an error.
  ASSERT_TRUE(
      index->Query(std::string(25, 'a'), 0.5, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(ShardedIndexTest, RandomizedAgreementWithMonolithicAndOracle) {
  for (const uint64_t seed : {1u, 2u, 3u, 4u}) {
    test::RandomStringSpec spec;
    spec.length = 150;
    spec.alphabet = 4;
    spec.theta = 0.5;
    spec.seed = seed;
    const UncertainString s = test::RandomUncertain(spec);

    ShardedIndexOptions options;
    options.index.transform.tau_min = 0.05;
    options.num_shards = 5;
    options.overlap = 10;
    const auto sharded = ShardedIndex::Build(s, options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    const auto mono = SubstringIndex::Build(s, options.index);
    ASSERT_TRUE(mono.ok());

    Rng rng(seed * 77);
    for (int q = 0; q < 80; ++q) {
      const size_t len = 1 + rng.Uniform(11);
      std::string pattern;
      if (q % 3 == 0) {
        pattern = test::RandomPattern(4, len, rng.Next());
      } else {
        const int64_t start =
            static_cast<int64_t>(rng.Uniform(s.size() - len + 1));
        pattern = test::PatternFromString(s, start, len, rng.Next());
      }
      const double tau = 0.05 + 0.15 * static_cast<double>(rng.Uniform(4));
      std::vector<Match> got, want;
      ASSERT_TRUE(sharded->Query(pattern, tau, &got).ok());
      ASSERT_TRUE(mono->Query(pattern, tau, &want).ok());
      EXPECT_TRUE(test::SameMatches(got, want))
          << "pattern '" << pattern << "' tau " << tau;
      ExpectAgreesWithOracle(*sharded, s, pattern, tau);
    }
  }
}

TEST(ShardedIndexTest, CorrelationsAcrossShardBoundaries) {
  // 30 positions, 3 shards (begins 0/10/20). Rules whose dependency sits in
  // a *different* shard force the constant-rule rewrite; rules within one
  // shard keep exact case-1/case-2 resolution.
  UncertainString s;
  Rng rng(13);
  for (int i = 0; i < 30; ++i) {
    const uint8_t a = static_cast<uint8_t>('a' + rng.Uniform(2));
    const uint8_t b = a == 'a' ? 'b' : 'a';
    s.AddPosition({{a, 0.75}, {b, 0.25}});
  }
  struct Edge {
    int64_t pos, dep;
  };
  // In-shard (2->5), cross-shard near (9->12), cross-shard far (11->28),
  // backward cross-shard (21->3).
  for (const Edge e : {Edge{2, 5}, Edge{9, 12}, Edge{11, 28}, Edge{21, 3}}) {
    CorrelationRule rule;
    rule.pos = e.pos;
    rule.ch = s.options(e.pos)[0].ch;
    rule.dep_pos = e.dep;
    rule.dep_ch = s.options(e.dep)[0].ch;
    rule.prob_if_present = 0.875;
    rule.prob_if_absent = 0.25;
    ASSERT_TRUE(s.AddCorrelation(rule).ok());
  }

  ShardedIndexOptions options;
  options.index.transform.tau_min = 0.05;
  options.num_shards = 3;
  options.overlap = 6;
  const auto index = ShardedIndex::Build(s, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  Rng qrng(99);
  for (int q = 0; q < 120; ++q) {
    const size_t len = 1 + qrng.Uniform(7);
    const int64_t start =
        static_cast<int64_t>(qrng.Uniform(s.size() - len + 1));
    const std::string pattern =
        test::PatternFromString(s, start, len, qrng.Next());
    ExpectAgreesWithOracle(*index, s, pattern, 0.05);
    ExpectAgreesWithOracle(*index, s, pattern, 0.3);
  }
}

TEST(ShardedIndexTest, ParallelBuildMatchesSerialBuild) {
  test::RandomStringSpec spec;
  spec.length = 120;
  spec.seed = 17;
  const UncertainString s = test::RandomUncertain(spec);
  ShardedIndexOptions serial;
  serial.index.transform.tau_min = 0.05;
  serial.num_shards = 4;
  serial.overlap = 8;
  serial.num_threads = 1;
  ShardedIndexOptions parallel = serial;
  parallel.num_threads = 4;
  const auto a = ShardedIndex::Build(s, serial);
  const auto b = ShardedIndex::Build(s, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Construction is deterministic regardless of the thread count: the
  // persisted bytes must be identical.
  std::string blob_a, blob_b;
  ASSERT_TRUE(a->Save(&blob_a).ok());
  ASSERT_TRUE(b->Save(&blob_b).ok());
  EXPECT_EQ(blob_a, blob_b);
}

TEST(ShardedIndexTest, SaveLoadRoundTrip) {
  test::RandomStringSpec spec;
  spec.length = 90;
  spec.seed = 23;
  const UncertainString s = test::RandomUncertain(spec);
  ShardedIndexOptions options;
  options.index.transform.tau_min = 0.05;
  options.num_shards = 4;
  options.overlap = 6;
  const auto index = ShardedIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::string blob;
  ASSERT_TRUE(index->Save(&blob).ok());

  for (const int32_t threads : {1, 4}) {
    const auto loaded = ShardedIndex::Load(blob, threads);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->num_shards(), index->num_shards());
    EXPECT_EQ(loaded->options().overlap, index->options().overlap);
    Rng rng(1000 + static_cast<uint64_t>(threads));
    for (int q = 0; q < 40; ++q) {
      const size_t len = 1 + rng.Uniform(7);
      const int64_t start =
          static_cast<int64_t>(rng.Uniform(s.size() - len + 1));
      const std::string pattern =
          test::PatternFromString(s, start, len, rng.Next());
      std::vector<Match> got, want;
      ASSERT_TRUE(loaded->Query(pattern, 0.1, &got).ok());
      ASSERT_TRUE(index->Query(pattern, 0.1, &want).ok());
      EXPECT_TRUE(test::SameMatches(got, want)) << pattern;
    }
    // Re-saving the loaded index reproduces the same container.
    std::string blob2;
    ASSERT_TRUE(loaded->Save(&blob2).ok());
    EXPECT_EQ(blob2, blob);
  }
}

TEST(ShardedIndexTest, BatchMatchesLoopAndParallelFanout) {
  test::RandomStringSpec spec;
  spec.length = 140;
  spec.alphabet = 4;
  spec.seed = 29;
  const UncertainString s = test::RandomUncertain(spec);
  ShardedIndexOptions options;
  options.index.transform.tau_min = 0.05;
  options.num_shards = 4;
  options.overlap = 9;
  for (const int32_t threads : {1, 4}) {
    options.num_threads = threads;
    const auto index = ShardedIndex::Build(s, options);
    ASSERT_TRUE(index.ok());
    Rng rng(41);
    std::vector<BatchQuery> queries;
    for (int q = 0; q < 100; ++q) {
      const size_t len = 1 + rng.Uniform(10);
      const int64_t start =
          static_cast<int64_t>(rng.Uniform(s.size() - len + 1));
      queries.push_back({test::PatternFromString(s, start, len, rng.Next()),
                         0.05 + 0.1 * static_cast<double>(rng.Uniform(3))});
    }
    std::vector<std::vector<Match>> batch;
    ASSERT_TRUE(index->QueryBatch(queries, &batch).ok());
    ASSERT_EQ(batch.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      std::vector<Match> loop;
      ASSERT_TRUE(
          index->Query(queries[i].pattern, queries[i].tau, &loop).ok());
      EXPECT_TRUE(test::SameMatches(batch[i], loop))
          << "threads " << threads << " query #" << i;
    }
    // Batch validation failures name the offending query.
    std::vector<std::vector<Match>> out;
    const Status st =
        index->QueryBatch({{"ab", 0.1}, {std::string(11, 'a'), 0.1}}, &out);
    EXPECT_TRUE(st.IsNotSupported());
    EXPECT_NE(st.message().find("#1"), std::string::npos);
  }
}

TEST(ShardedIndexTest, HugeShardRequestStaysLoadable) {
  // Build clamps the shard count to the same bound Load enforces, so a
  // successfully saved index can always be read back.
  test::RandomStringSpec spec;
  spec.length = 200;
  spec.seed = 61;
  const UncertainString s = test::RandomUncertain(spec);
  ShardedIndexOptions options;
  options.index.transform.tau_min = 0.1;
  options.num_shards = std::numeric_limits<int32_t>::max();
  options.overlap = 4;
  const auto index = ShardedIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  EXPECT_LE(index->num_shards(), 100);  // n/2 clamp dominates here
  std::string blob;
  ASSERT_TRUE(index->Save(&blob).ok());
  EXPECT_TRUE(ShardedIndex::Load(blob).ok());
}

TEST(ShardedIndexTest, ShardCountClamping) {
  test::RandomStringSpec spec;
  spec.length = 10;
  spec.seed = 47;
  const UncertainString s = test::RandomUncertain(spec);
  ShardedIndexOptions options;
  options.index.transform.tau_min = 0.05;
  options.num_shards = 64;  // clamped: every shard must own >= 2 positions
  options.overlap = 3;
  const auto index = ShardedIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  EXPECT_LE(index->num_shards(), 5);
  EXPECT_GE(index->num_shards(), 2);
  for (int32_t k = 1; k < index->num_shards(); ++k) {
    EXPECT_GE(index->shard_begin(k) - index->shard_begin(k - 1), 2);
  }
  for (int q = 0; q < 20; ++q) {
    const std::string pattern =
        test::PatternFromString(s, q % 7, 1 + q % 4, 900 + q);
    ExpectAgreesWithOracle(*index, s, pattern, 0.1);
  }
}

TEST(ShardedIndexTest, EmptyAndTinyStrings) {
  {
    const auto index = ShardedIndex::Build(UncertainString(), {});
    ASSERT_TRUE(index.ok());
    EXPECT_EQ(index->num_shards(), 1);
    std::vector<Match> out;
    ASSERT_TRUE(index->Query("a", 0.5, &out).ok());
    EXPECT_TRUE(out.empty());
    std::string blob;
    ASSERT_TRUE(index->Save(&blob).ok());
    const auto loaded = ShardedIndex::Load(blob);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->num_shards(), 1);
  }
  {
    const UncertainString s = UncertainString::FromDeterministic("ab");
    ShardedIndexOptions options;
    options.num_shards = 8;
    const auto index = ShardedIndex::Build(s, options);
    ASSERT_TRUE(index.ok());
    EXPECT_EQ(index->num_shards(), 1);
    ExpectAgreesWithOracle(*index, s, "ab", 0.5);
    ExpectAgreesWithOracle(*index, s, "b", 0.5);
  }
}

TEST(ShardedIndexTest, StatsAndOptionsResolved) {
  test::RandomStringSpec spec;
  spec.length = 80;
  spec.seed = 53;
  const UncertainString s = test::RandomUncertain(spec);
  ShardedIndexOptions options;
  options.index.transform.tau_min = 0.05;
  options.num_shards = 4;
  options.overlap = 5;
  const auto index = ShardedIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  const auto stats = index->stats();
  EXPECT_EQ(stats.original_length, 80);
  EXPECT_EQ(stats.num_shards, 4);
  EXPECT_EQ(stats.overlap, 5);
  EXPECT_GT(stats.num_factors, 0u);
  EXPECT_GT(stats.transformed_length, 0u);
  EXPECT_GT(index->MemoryUsage(), 0u);
  EXPECT_EQ(index->options().num_shards, 4);
  EXPECT_EQ(index->options().overlap, 5);
  EXPECT_GE(index->options().num_threads, 1);  // 0 resolves to hardware
  EXPECT_EQ(index->shard_begin(0), 0);
  // Compact per-shard mode works through the engine unchanged.
  ShardedIndexOptions compact = options;
  compact.index.compact = true;
  const auto cindex = ShardedIndex::Build(s, compact);
  ASSERT_TRUE(cindex.ok());
  for (int q = 0; q < 20; ++q) {
    const std::string pattern =
        test::PatternFromString(s, (q * 7) % 70, 1 + q % 6, 700 + q);
    ExpectAgreesWithOracle(*cindex, s, pattern, 0.1);
  }
}

}  // namespace
}  // namespace pti
