// Tests for SpecialIndex (§4): simple vs efficient mode equivalence, oracle
// cross-validation, the Figure 5 worked example, and correlation handling.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/special_index.h"
#include "test_util.h"

namespace pti {
namespace {

UncertainString MakeSpecial(const std::string& chars,
                            const std::vector<double>& probs) {
  UncertainString s;
  for (size_t i = 0; i < chars.size(); ++i) {
    s.AddPosition({{static_cast<uint8_t>(chars[i]), probs[i]}});
  }
  return s;
}

// Random special string: every position one character with a snapped prob.
UncertainString RandomSpecial(int64_t length, int32_t alphabet, uint64_t seed) {
  Rng rng(seed);
  UncertainString s;
  for (int64_t i = 0; i < length; ++i) {
    const double p = static_cast<double>(1 + rng.Uniform(64)) / 64.0;
    s.AddPosition(
        {{static_cast<uint8_t>('a' + rng.Uniform(alphabet)), p}});
  }
  return s;
}

TEST(SpecialIndexTest, Figure5WorkedExample) {
  // X = (b,.4)(a,.7)(n,.5)(a,.8)(n,.9)(a,.6); query ("ana", 0.3) outputs
  // 1-based position 4 (ours: 3) with 0.432; position 2 fails at 0.28.
  const UncertainString s =
      MakeSpecial("banana", {0.4, 0.7, 0.5, 0.8, 0.9, 0.6});
  const auto index = SpecialIndex::Build(s, SpecialIndexOptions{});
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  std::vector<Match> out;
  ASSERT_TRUE(index->Query("ana", 0.3, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].position, 3);
  EXPECT_NEAR(out[0].probability, 0.432, 1e-12);
  // Lower threshold picks up the second occurrence.
  ASSERT_TRUE(index->Query("ana", 0.25, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].position, 1);
  EXPECT_NEAR(out[0].probability, 0.28, 1e-12);
}

TEST(SpecialIndexTest, RejectsNonSpecialStrings) {
  UncertainString s;
  s.AddPosition({{'a', 0.5}, {'b', 0.5}});
  EXPECT_TRUE(
      SpecialIndex::Build(s, SpecialIndexOptions{}).status().IsInvalidArgument());
}

TEST(SpecialIndexTest, RejectsZeroProbability) {
  UncertainString s;
  s.AddPosition({{'a', 1.0}});
  s.AddPosition({{'b', 0.0}});
  // Fails validation (sum != 1) before the positivity check.
  EXPECT_TRUE(
      SpecialIndex::Build(s, SpecialIndexOptions{}).status().IsInvalidArgument());
}

TEST(SpecialIndexTest, ArbitraryTauNoTauMin) {
  // §4 has no construction-time threshold: any tau in (0, 1] works.
  const UncertainString s = MakeSpecial("ab", {0.01, 0.02});
  const auto index = SpecialIndex::Build(s, SpecialIndexOptions{});
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  ASSERT_TRUE(index->Query("ab", 0.0001, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].probability, 0.0002, 1e-15);
  ASSERT_TRUE(index->Query("ab", 0.001, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(SpecialIndexTest, SimpleAndEfficientModesAgree) {
  const UncertainString s = RandomSpecial(300, 2, 31);
  SpecialIndexOptions simple;
  simple.use_rmq = false;
  SpecialIndexOptions efficient;
  efficient.scan_cutoff = 0;
  const auto a = SpecialIndex::Build(s, simple);
  const auto b = SpecialIndex::Build(s, efficient);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Rng rng(37);
  for (int q = 0; q < 80; ++q) {
    const std::string pattern =
        test::RandomPattern(2, 1 + rng.Uniform(12), rng.Next());
    for (const double tau : {0.05, 0.3, 0.9}) {
      std::vector<Match> ma, mb;
      ASSERT_TRUE(a->Query(pattern, tau, &ma).ok());
      ASSERT_TRUE(b->Query(pattern, tau, &mb).ok());
      ASSERT_TRUE(test::SameMatches(ma, mb))
          << pattern << " tau=" << tau << "\nsimple: "
          << test::MatchesToString(ma)
          << "\nefficient: " << test::MatchesToString(mb);
    }
  }
}

class SpecialSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, double, int>> {};

TEST_P(SpecialSweepTest, MatchesOracle) {
  const auto [length, alphabet, tau, seed] = GetParam();
  const UncertainString s = RandomSpecial(length, alphabet, seed * 101);
  const auto index = SpecialIndex::Build(s, SpecialIndexOptions{});
  ASSERT_TRUE(index.ok());
  Rng rng(seed);
  for (int q = 0; q < 50; ++q) {
    const size_t len = 1 + rng.Uniform(8);
    std::string pattern;
    if (q % 2 == 0 && s.size() >= static_cast<int64_t>(len)) {
      const int64_t start =
          static_cast<int64_t>(rng.Uniform(s.size() - len + 1));
      pattern = test::PatternFromString(s, start, len, rng.Next());
    } else {
      pattern = test::RandomPattern(alphabet, len, rng.Next());
    }
    std::vector<Match> got;
    ASSERT_TRUE(index->Query(pattern, tau, &got).ok());
    const std::vector<Match> want = BruteForceSearch(s, pattern, tau);
    ASSERT_TRUE(test::SameMatches(got, want))
        << pattern << "\n got: " << test::MatchesToString(got)
        << "\nwant: " << test::MatchesToString(want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpecialSweepTest,
    ::testing::Combine(::testing::Values(1, 5, 64, 400),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(0.9, 0.4, 0.1, 0.01),
                       ::testing::Values(1, 2)));

TEST(SpecialIndexTest, LongPatternsUseBlockLevels) {
  const UncertainString s = RandomSpecial(500, 2, 53);
  SpecialIndexOptions options;
  options.max_short_depth = 3;
  options.scan_cutoff = 1;
  const auto index = SpecialIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->stats().short_depth_limit, 3);
  Rng rng(59);
  for (int q = 0; q < 40; ++q) {
    const size_t len = 4 + rng.Uniform(20);
    const int64_t start = static_cast<int64_t>(rng.Uniform(s.size() - len + 1));
    const std::string pattern =
        test::PatternFromString(s, start, len, rng.Next());
    std::vector<Match> got;
    ASSERT_TRUE(index->Query(pattern, 0.01, &got).ok());
    ASSERT_TRUE(test::SameMatches(got, BruteForceSearch(s, pattern, 0.01)))
        << pattern;
  }
}

TEST(SpecialIndexTest, CorrelationHandledAtValidation) {
  // §4.1 "Handling Correlation" on a special string: z at position 2
  // depends on e at position 0 (Figure 4 layout, one char per position).
  UncertainString s;
  s.AddPosition({{'e', 0.6}});
  s.AddPosition({{'q', 1.0}});
  s.AddPosition({{'z', 1.0}});
  ASSERT_TRUE(s.AddCorrelation({.pos = 2, .ch = 'z', .dep_pos = 0,
                                .dep_ch = 'e', .prob_if_present = 0.3,
                                .prob_if_absent = 0.4})
                  .ok());
  const auto index = SpecialIndex::Build(s, SpecialIndexOptions{});
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  // Window includes the dependency: e present => pr(z) = .3.
  ASSERT_TRUE(index->Query("eqz", 0.1, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].probability, 0.6 * 1.0 * 0.3, 1e-12);
  // Window excludes it: marginal .6*.3+.4*.4 = .34.
  ASSERT_TRUE(index->Query("qz", 0.1, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].probability, 0.34, 1e-12);
  // And the oracle agrees everywhere.
  for (const char* p : {"e", "q", "z", "eq", "qz", "eqz"}) {
    std::vector<Match> got;
    ASSERT_TRUE(index->Query(p, 0.05, &got).ok());
    ASSERT_TRUE(test::SameMatches(got, BruteForceSearch(s, p, 0.05))) << p;
  }
}

TEST(SpecialIndexTest, EmptyAndValidation) {
  const auto index = SpecialIndex::Build(UncertainString(),
                                         SpecialIndexOptions{});
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  EXPECT_TRUE(index->Query("a", 0.5, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(index->Query("", 0.5, &out).IsInvalidArgument());
  EXPECT_TRUE(index->Query("a", 0.0, &out).IsInvalidArgument());
  EXPECT_TRUE(index->Query("a", 2.0, &out).IsInvalidArgument());
}

TEST(SpecialIndexTest, MemoryUsageNonzero) {
  const UncertainString s = RandomSpecial(100, 3, 61);
  const auto index = SpecialIndex::Build(s, SpecialIndexOptions{});
  ASSERT_TRUE(index.ok());
  EXPECT_GT(index->MemoryUsage(), 0u);
}

}  // namespace
}  // namespace pti
