// Tests for src/util: Status, StatusOr, LogProb, Rng, serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/log_prob.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/status.h"

namespace pti {
namespace {

// ---- Status ----

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_EQ(Status::Corruption("bad magic").ToString(),
            "Corruption: bad magic");
  EXPECT_FALSE(Status::Corruption("x").ok());
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto inner = [] { return Status::NotFound("missing"); };
  auto outer = [&]() -> Status {
    PTI_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::InvalidArgument("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInvalidArgument());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, AssignOrReturnMacroUnwrapsAndPropagates) {
  auto make = [](bool ok) -> StatusOr<int> {
    if (ok) return 5;
    return Status::NotFound("missing");
  };
  auto use = [&](bool ok) -> Status {
    PTI_ASSIGN_OR_RETURN(const int v, make(ok));
    return v == 5 ? Status::OK() : Status::Corruption("wrong value");
  };
  EXPECT_TRUE(use(true).ok());
  EXPECT_TRUE(use(false).IsNotFound());
}

TEST(StatusOrTest, AssignOrReturnAssignsExistingLvalue) {
  auto outer = [&]() -> Status {
    int v = 0;
    PTI_ASSIGN_OR_RETURN(v, StatusOr<int>(9));
    return v == 9 ? Status::OK() : Status::Corruption("wrong value");
  };
  EXPECT_TRUE(outer().ok());
}

// The StatusOr contract holes are hard process aborts in every build mode —
// not assert()s, which release builds compile out, silently yielding a
// default-constructed value. Pinned with death tests so a revert back to
// assert() (which would pass in Debug but regress Release) fails loudly here.
TEST(StatusOrDeathTest, ConstructingFromOkStatusAborts) {
  EXPECT_DEATH(
      {
        StatusOr<int> v(Status::OK());
        (void)v;
      },
      "StatusOr constructed from an OK Status");
}

TEST(StatusOrDeathTest, ValueOnFailedStatusOrAborts) {
  StatusOr<int> v = Status::InvalidArgument("nope");
  EXPECT_DEATH((void)v.value(), "value\\(\\) called on a failed StatusOr");
}

// ---- LogProb ----

TEST(LogProbTest, RoundTrip) {
  for (const double p : {1.0, 0.5, 0.25, 0.1, 1e-6, 1e-300}) {
    EXPECT_NEAR(LogProb::FromLinear(p).ToLinear(), p, p * 1e-12);
  }
}

TEST(LogProbTest, ZeroAndOne) {
  EXPECT_TRUE(LogProb::Zero().IsZero());
  EXPECT_EQ(LogProb::One().ToLinear(), 1.0);
  EXPECT_EQ(LogProb::FromLinear(0.0).ToLinear(), 0.0);
  EXPECT_TRUE(LogProb::FromLinear(0.0).IsZero());
}

TEST(LogProbTest, MultiplicationMatchesLinear) {
  const LogProb a = LogProb::FromLinear(0.5);
  const LogProb b = LogProb::FromLinear(0.25);
  EXPECT_NEAR((a * b).ToLinear(), 0.125, 1e-15);
  EXPECT_TRUE((a * LogProb::Zero()).IsZero());
  EXPECT_TRUE((LogProb::Zero() * LogProb::Zero()).IsZero());
}

TEST(LogProbTest, DivisionInvertsMultiplication) {
  const LogProb a = LogProb::FromLinear(0.5);
  const LogProb b = LogProb::FromLinear(0.25);
  EXPECT_NEAR(((a * b) / b).ToLinear(), 0.5, 1e-15);
}

TEST(LogProbTest, NoUnderflowForLongProducts) {
  // 1e6 factors of 0.5 would underflow linear doubles (~1e-301030).
  LogProb p = LogProb::One();
  const LogProb half = LogProb::FromLinear(0.5);
  for (int i = 0; i < 1000000; ++i) p *= half;
  EXPECT_FALSE(p.IsZero());
  EXPECT_NEAR(p.log(), 1000000 * std::log(0.5), 1e-3);
}

TEST(LogProbTest, OrderingMatchesLinear) {
  EXPECT_LT(LogProb::FromLinear(0.1), LogProb::FromLinear(0.2));
  EXPECT_GT(LogProb::One(), LogProb::FromLinear(0.999));
  EXPECT_LT(LogProb::Zero(), LogProb::FromLinear(1e-300));
}

TEST(LogProbTest, MeetsThresholdExactAndSlack) {
  const LogProb tau = LogProb::FromLinear(0.25);
  EXPECT_TRUE(LogProb::FromLinear(0.25).MeetsThreshold(tau));
  EXPECT_TRUE(LogProb::FromLinear(0.26).MeetsThreshold(tau));
  EXPECT_FALSE(LogProb::FromLinear(0.24).MeetsThreshold(tau));
  // Tiny numeric jitter below the threshold still passes (slack).
  EXPECT_TRUE(LogProb::FromLog(tau.log() - 1e-12).MeetsThreshold(tau));
  // Zero only meets a zero threshold.
  EXPECT_FALSE(LogProb::Zero().MeetsThreshold(tau));
  EXPECT_TRUE(LogProb::Zero().MeetsThreshold(LogProb::Zero()));
  EXPECT_TRUE(LogProb::FromLinear(0.1).MeetsThreshold(LogProb::Zero()));
}

// ---- Rng ----

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ClampedNormalStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.ClampedNormal(32.5, 6.0, 20, 45);
    EXPECT_GE(v, 20.0);
    EXPECT_LE(v, 45.0);
  }
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(19);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) {
    counts[rng.Discrete({0.7, 0.2, 0.1})]++;
  }
  EXPECT_NEAR(counts[0] / 30000.0, 0.7, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.1, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

// ---- Serialization ----

TEST(SerialTest, PrimitivesRoundTrip) {
  Writer w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutDouble(3.5);
  w.PutString("hello");
  Reader r(w.data());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  std::string s;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d, 3.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerialTest, VectorRoundTrip) {
  Writer w;
  w.PutVector(std::vector<int32_t>{1, -2, 3});
  w.PutVector(std::vector<double>{0.5, -1.5});
  w.PutVector(std::vector<int64_t>{});
  Reader r(w.data());
  std::vector<int32_t> a;
  std::vector<double> b;
  std::vector<int64_t> c;
  ASSERT_TRUE(r.GetVector(&a).ok());
  ASSERT_TRUE(r.GetVector(&b).ok());
  ASSERT_TRUE(r.GetVector(&c).ok());
  EXPECT_EQ(a, (std::vector<int32_t>{1, -2, 3}));
  EXPECT_EQ(b, (std::vector<double>{0.5, -1.5}));
  EXPECT_TRUE(c.empty());
}

TEST(SerialTest, TruncatedReadFailsCleanly) {
  Writer w;
  w.PutU64(7);
  std::string data = w.data();
  data.resize(4);  // truncate mid-field
  Reader r(data);
  uint64_t v = 99;
  EXPECT_TRUE(r.GetU64(&v).IsCorruption());
}

TEST(SerialTest, OversizedVectorLengthRejected) {
  Writer w;
  w.PutU64(uint64_t{1} << 60);  // claims 2^60 elements
  Reader r(w.data());
  std::vector<int64_t> v;
  EXPECT_TRUE(r.GetVector(&v).IsCorruption());
}

TEST(SerialTest, OversizedStringLengthRejected) {
  Writer w;
  w.PutU64(uint64_t{1} << 40);
  Reader r(w.data());
  std::string s;
  EXPECT_TRUE(r.GetString(&s).IsCorruption());
}

TEST(SerialTest, SubRangeReaderIsBounded) {
  Writer w;
  w.PutU32(1);
  w.PutU32(2);
  w.PutU32(3);
  const std::string& data = w.data();
  Reader r(data.data() + 4, 4);  // window over the middle u32 only
  uint32_t v = 0;
  ASSERT_TRUE(r.GetU32(&v).ok());
  EXPECT_EQ(v, 2u);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.GetU32(&v).IsCorruption());
}

TEST(SerialTest, SkipIsBounded) {
  Writer w;
  w.PutU32(7);
  Reader r(w.data());
  EXPECT_TRUE(r.Skip(2).ok());
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_TRUE(r.Skip(3).IsCorruption());
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(SerialTest, Fnv1aMatchesReference) {
  // Reference values for the canonical FNV-1a 64 test vectors.
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar", 6), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace pti
