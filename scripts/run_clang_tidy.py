#!/usr/bin/env python3
"""Parallel clang-tidy runner with a zero-new-findings baseline gate.

Runs clang-tidy (configured by the repo-root .clang-tidy) over every
translation unit in compile_commands.json that lives under the selected
source dirs (default: src/), in parallel, and diffs the findings against
scripts/clang_tidy_baseline.txt:

  * a finding class (file, check) with more occurrences than the baseline
    records fails the gate (exit 1) and prints the new diagnostics;
  * fewer occurrences than recorded is progress — reported, and the run
    still passes; refresh with --update-baseline so the ratchet tightens;
  * --update-baseline rewrites the baseline to exactly the current findings.

The baseline keys on (file, check), not line numbers, so unrelated edits
that shift lines don't churn it.

Tool discovery: uses --clang-tidy, else $CLANG_TIDY, else the first of
clang-tidy / clang-tidy-20 ... clang-tidy-14 on PATH. When no binary exists
the run is SKIPPED with exit 0 — local containers without LLVM stay green —
unless --require-tool is passed (CI does), which turns a missing tool into a
hard error.

Needs compile_commands.json; the root CMakeLists.txt sets
CMAKE_EXPORT_COMPILE_COMMANDS, so any configured build dir has one.

Exit codes: 0 clean/skipped, 1 new findings, 2 usage/tool/setup error.
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "scripts",
                                "clang_tidy_baseline.txt")
TOOL_CANDIDATES = ["clang-tidy"] + [
    "clang-tidy-%d" % v for v in range(20, 13, -1)]

# /abs/path.cc:12:34: warning: message [check-name]
DIAG_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<kind>warning|error): (?P<msg>.*?) \[(?P<check>[^\]\s]+)\]$")


def find_tool(explicit):
    for name in ([explicit] if explicit else []) + \
            ([os.environ["CLANG_TIDY"]] if os.environ.get("CLANG_TIDY")
             else []) + TOOL_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def load_compile_commands(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        raise SystemExit(
            "run_clang_tidy: %s not found; configure first "
            "(cmake -B %s -S . — CMAKE_EXPORT_COMPILE_COMMANDS is on by "
            "default in the root CMakeLists.txt)" % (path, build_dir))
    with open(path) as f:
        return json.load(f)


def select_files(commands, source_dirs):
    roots = [os.path.join(REPO_ROOT, d) for d in source_dirs]
    files = set()
    for entry in commands:
        path = os.path.normpath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        if any(path.startswith(r + os.sep) for r in roots):
            files.add(path)
    return sorted(files)


def run_one(tool, build_dir, path):
    proc = subprocess.run(
        [tool, "-quiet", "-p", build_dir, path],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    diags = []
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        rel = os.path.relpath(os.path.normpath(m.group("file")), REPO_ROOT)
        if rel.startswith(".."):  # system/third-party header
            continue
        diags.append((rel.replace(os.sep, "/"), int(m.group("line")),
                      m.group("check"), m.group("msg")))
    # clang-tidy exits nonzero on hard errors (missing headers, bad flags)
    # even with no parsed diagnostics; surface that instead of passing.
    hard_error = proc.returncode != 0 and not diags and \
        "error" in (proc.stdout + proc.stderr)
    return diags, hard_error, proc.stderr if hard_error else ""


def read_baseline(path):
    counts = {}
    if not os.path.isfile(path):
        return counts
    with open(path) as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            count, rel, check = line.split()
            counts[(rel, check)] = int(count)
    return counts


def write_baseline(path, counts):
    with open(path, "w") as f:
        f.write("# clang-tidy baseline: known findings the gate tolerates,\n"
                "# as '<count> <file> <check>'. Shrink-only by policy: fix\n"
                "# findings and refresh with\n"
                "#   scripts/run_clang_tidy.py --update-baseline\n"
                "# Never hand-add entries to silence a new finding; that is\n"
                "# what `// NOLINT(<check>)` with a justification is for.\n")
        for (rel, check), count in sorted(counts.items()):
            f.write("%d %s %s\n" % (count, rel, check))


def main(argv):
    parser = argparse.ArgumentParser(
        description="parallel clang-tidy over compile_commands.json with a "
                    "zero-new-findings baseline gate")
    parser.add_argument("source_dirs", nargs="*", default=None,
                        help="repo-relative dirs to lint (default: src)")
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"),
                        help="build tree holding compile_commands.json")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to the current findings")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: autodetect)")
    parser.add_argument("--require-tool", action="store_true",
                        help="fail instead of skipping when clang-tidy is "
                             "not installed (CI)")
    parser.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args(argv)

    tool = find_tool(args.clang_tidy)
    if tool is None:
        if args.require_tool:
            print("run_clang_tidy: no clang-tidy binary found "
                  "(tried: %s)" % ", ".join(TOOL_CANDIDATES), file=sys.stderr)
            return 2
        print("run_clang_tidy: SKIPPED — no clang-tidy binary on PATH "
              "(install LLVM, or rely on the CI job, which passes "
              "--require-tool)")
        return 0

    commands = load_compile_commands(args.build_dir)
    files = select_files(commands, args.source_dirs or ["src"])
    if not files:
        print("run_clang_tidy: no translation units under %s in %s"
              % (args.source_dirs or ["src"], args.build_dir), file=sys.stderr)
        return 2
    print("run_clang_tidy: %s over %d TUs (%d jobs)"
          % (tool, len(files), args.jobs))

    all_diags = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for diags, hard_error, stderr in pool.map(
                lambda p: run_one(tool, args.build_dir, p), files):
            if hard_error:
                print("run_clang_tidy: clang-tidy failed:\n%s" % stderr,
                      file=sys.stderr)
                return 2
            all_diags.extend(diags)
    # The same header diagnostic can be re-reported by several TUs.
    all_diags = sorted(set(all_diags))

    counts = {}
    for rel, _, check, _ in all_diags:
        counts[(rel, check)] = counts.get((rel, check), 0) + 1

    if args.update_baseline:
        write_baseline(args.baseline, counts)
        print("run_clang_tidy: wrote %d finding class(es) to %s"
              % (len(counts), os.path.relpath(args.baseline, REPO_ROOT)))
        return 0

    baseline = read_baseline(args.baseline)
    new_keys = {k for k, n in counts.items() if n > baseline.get(k, 0)}
    fixed = {k: baseline[k] - counts.get(k, 0) for k in baseline
             if counts.get(k, 0) < baseline[k]}

    if fixed:
        print("run_clang_tidy: %d baselined finding(s) no longer occur — "
              "run --update-baseline to ratchet down" % sum(fixed.values()))
    if new_keys:
        print("run_clang_tidy: NEW findings (not in %s):"
              % os.path.relpath(args.baseline, REPO_ROOT), file=sys.stderr)
        for rel, line, check, msg in all_diags:
            if (rel, check) in new_keys:
                print("  %s:%d: %s [%s]" % (rel, line, msg, check),
                      file=sys.stderr)
        print("run_clang_tidy: fix them (preferred), suppress a justified "
              "false positive with // NOLINT(<check>), or — for a "
              "pre-existing class being burned down — refresh the baseline.",
              file=sys.stderr)
        return 1
    print("run_clang_tidy: clean (%d finding(s) all within baseline)"
          % len(all_diags))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
