#!/usr/bin/env python3
"""clang-format conformance check for the C++ tree.

Runs clang-format (configured by the repo-root .clang-format) over every
tracked C++ file under the selected dirs (default: src, tests, examples,
bench, fuzz) and reports files whose formatted output differs from what is
on disk. Never rewrites files; use --fix (or clang-format -i) to apply.

Tool discovery mirrors run_clang_tidy.py: --clang-format, else
$CLANG_FORMAT, else the first of clang-format / clang-format-20 ...
clang-format-14 on PATH. A missing binary SKIPs with exit 0 so local
containers without LLVM stay green, unless --require-tool is passed (CI).

Exit codes: 0 clean/skipped, 1 files need formatting, 2 usage/tool error.
"""

import argparse
import concurrent.futures
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_DIRS = ["src", "tests", "examples", "bench", "fuzz"]
EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")
TOOL_CANDIDATES = ["clang-format"] + [
    "clang-format-%d" % v for v in range(20, 13, -1)]


def find_tool(explicit):
    for name in ([explicit] if explicit else []) + \
            ([os.environ["CLANG_FORMAT"]] if os.environ.get("CLANG_FORMAT")
             else []) + TOOL_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def collect_files(dirs):
    files = []
    for d in dirs:
        root = os.path.join(REPO_ROOT, d)
        if not os.path.isdir(root):
            continue
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith(EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def check_one(tool, path, fix):
    if fix:
        proc = subprocess.run([tool, "-style=file", "-i", path],
                              stderr=subprocess.PIPE, text=True)
        return path, proc.returncode != 0, proc.stderr
    with open(path, "rb") as f:
        original = f.read()
    proc = subprocess.run([tool, "-style=file", path],
                          stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    if proc.returncode != 0:
        return path, True, proc.stderr.decode(errors="replace")
    return path, proc.stdout != original, ""


def main(argv):
    parser = argparse.ArgumentParser(
        description="check C++ files against the repo .clang-format")
    parser.add_argument("dirs", nargs="*", default=None,
                        help="repo-relative dirs to check (default: %s)"
                             % " ".join(DEFAULT_DIRS))
    parser.add_argument("--fix", action="store_true",
                        help="rewrite files in place instead of checking")
    parser.add_argument("--clang-format", default=None,
                        help="clang-format binary (default: autodetect)")
    parser.add_argument("--require-tool", action="store_true",
                        help="fail instead of skipping when clang-format is "
                             "not installed (CI)")
    parser.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args(argv)

    tool = find_tool(args.clang_format)
    if tool is None:
        if args.require_tool:
            print("check_format: no clang-format binary found (tried: %s)"
                  % ", ".join(TOOL_CANDIDATES), file=sys.stderr)
            return 2
        print("check_format: SKIPPED — no clang-format binary on PATH "
              "(install LLVM, or rely on the CI job, which passes "
              "--require-tool)")
        return 0

    files = collect_files(args.dirs or DEFAULT_DIRS)
    if not files:
        print("check_format: no C++ files under %s"
              % (args.dirs or DEFAULT_DIRS), file=sys.stderr)
        return 2

    dirty = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for path, needs_work, err in pool.map(
                lambda p: check_one(tool, p, args.fix), files):
            if err:
                print("check_format: %s failed on %s:\n%s"
                      % (tool, path, err), file=sys.stderr)
                return 2
            if needs_work:
                dirty.append(os.path.relpath(path, REPO_ROOT))

    if args.fix:
        print("check_format: reformatted %d of %d file(s)"
              % (len(dirty), len(files)))
        return 0
    if dirty:
        print("check_format: %d of %d file(s) not formatted:"
              % (len(dirty), len(files)), file=sys.stderr)
        for rel in dirty:
            print("  %s" % rel, file=sys.stderr)
        print("check_format: run scripts/check_format.py --fix",
              file=sys.stderr)
        return 1
    print("check_format: clean (%d file(s))" % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
