#!/usr/bin/env python3
"""Bench regression guard: diff a fresh bench run against docs/baselines/.

Capture mode (run after intentional perf changes, commit the result):

    scripts/check_bench.py --bench-dir build/bench --update

Check mode (CI and perf PRs):

    scripts/check_bench.py --bench-dir build/bench [--tolerance 1.0]

Every table-format bench binary is run at default scale and parsed into
{table title -> rows -> values}. The comparison is two-layered:

  * Structure is strict: a missing table, changed header, or missing row
    always fails — renaming or dropping a panel must be a conscious,
    committed baseline update.
  * Values are unit-aware. Deterministic units ("count", "x n" multiples)
    must match almost exactly; memory ("MB") within 5%; timing units
    (us/ms/seconds) only fail when the fresh value exceeds the baseline by
    the --tolerance fraction (default 1.0 = 2x) AND the baseline is above
    --abs-floor (tiny timings are noise-dominated). Faster is never a
    failure. "speedup" ratio columns are derived from two timings and are
    skipped.

Timing baselines are machine-relative: compare against baselines captured
on comparable hardware, and pass a generous --tolerance (CI uses 5.0) when
the reference machine differs. bench_ablation_rmq emits google-benchmark
output, not tables; --update captures it for reference but it is never
compared.

Paper-scale runs: --full passes --full to every bench binary; pair it with
--baseline-dir docs/baselines/full, which holds the full-scale tables (the
scheduled bench-full workflow checks them weekly). --save-dir writes each
fresh run's raw output alongside the comparison so CI can upload it as an
artifact.
"""

import argparse
import os
import re
import subprocess
import sys

TABLE_BENCHES = [
    "bench_ablation_approx",
    "bench_ablation_blocking",
    "bench_ablation_compact",
    "bench_ablation_simple_vs_efficient",
    "bench_ablation_transform",
    "bench_fig7_substring",
    "bench_fig8_listing",
    "bench_fig9_construction",
    "bench_fuzzy",
    "bench_load",
    "bench_serving",
    "bench_serving_net",
    "bench_sharding",
]
# Captured for reference in --update mode, never compared (google-benchmark
# output, no stable table structure).
CAPTURE_ONLY_BENCHES = ["bench_ablation_rmq"]

TITLE_RE = re.compile(r"^(\S.*\S)\s+\[(.+)\]$")

# Table::Print layout: "  %-12s" row label, then " %12s" / " %12.3f" fields.
LABEL_WIDTH = 14
FIELD_WIDTH = 13


class ParseError(Exception):
    pass


def parse_tables(text):
    """Returns {title: {"unit", "header", "rows": {label: [float, ...]}}}."""
    tables = {}
    current = None
    for line in text.splitlines():
        if not line.strip():
            current = None
            continue
        m = TITLE_RE.match(line)
        if m and not line.startswith("  "):
            current = {"unit": m.group(2), "header": None, "rows": {}}
            if m.group(1) in tables:
                raise ParseError(f"duplicate table title: {m.group(1)}")
            tables[m.group(1)] = current
            continue
        if current is None or not line.startswith("  "):
            continue  # bench banner or free-form output
        if current["header"] is None:
            current["header"] = line.rstrip()
            continue
        row = line.rstrip()
        body = len(row) - LABEL_WIDTH
        if body <= 0 or body % FIELD_WIDTH != 0:
            raise ParseError(f"unparseable data row (fixed-width): {row!r}")
        label = row[2:LABEL_WIDTH].strip()
        values = []
        for k in range(body // FIELD_WIDTH):
            field = row[LABEL_WIDTH + k * FIELD_WIDTH:
                        LABEL_WIDTH + (k + 1) * FIELD_WIDTH]
            try:
                values.append(float(field))
            except ValueError:
                raise ParseError(f"non-numeric field {field!r} in: {row!r}")
        if label in current["rows"]:
            raise ParseError(f"duplicate row label {label!r}")
        current["rows"][label] = values
    return tables


def classify(unit):
    """'strict' (deterministic), 'memory', or 'timing'."""
    u = unit.lower()
    if "count" in u or u.startswith("x "):
        return "strict"
    if "mb" in u:
        return "memory"
    return "timing"


def floor_scale(unit):
    """--abs-floor is expressed in microseconds; scale it to the unit."""
    u = unit.lower()
    if "seconds" in u:
        return 1e-6
    if re.search(r"\bms\b", u):
        return 1e-3
    return 1.0


def compare(bench, base_tables, fresh_tables, tolerance, abs_floor):
    problems = []

    def fail(msg):
        problems.append(f"{bench}: {msg}")

    # A panel rename shows up as one table disappearing and another
    # appearing; point straight at the targeted recapture command.
    recapture = f"scripts/check_bench.py --update --only {bench}"
    for title in base_tables:
        if title not in fresh_tables:
            fail(f"table disappeared (panel removed or renamed; if "
                 f"intentional, recapture with `{recapture}`): {title!r}")
    for title in fresh_tables:
        if title not in base_tables:
            fail(f"new table not in baseline (panel added or renamed; "
                 f"recapture with `{recapture}`): {title!r}")
    for title, base in base_tables.items():
        fresh = fresh_tables.get(title)
        if fresh is None:
            continue
        if base["unit"] != fresh["unit"]:
            fail(f"{title!r}: unit changed {base['unit']!r} -> "
                 f"{fresh['unit']!r}")
            continue
        if base["header"] != fresh["header"]:
            fail(f"{title!r}: header changed\n    was: {base['header']}\n"
                 f"    now: {fresh['header']}")
            continue
        skip_last = "speedup" in (base["header"] or "")
        kind = classify(base["unit"])
        floor = abs_floor * floor_scale(base["unit"])
        for label, base_vals in base["rows"].items():
            fresh_vals = fresh["rows"].get(label)
            if fresh_vals is None:
                fail(f"{title!r}: row disappeared: {label!r}")
                continue
            if len(fresh_vals) != len(base_vals):
                fail(f"{title!r} row {label!r}: column count changed")
                continue
            ncols = len(base_vals) - (1 if skip_last else 0)
            for c in range(ncols):
                b, f = base_vals[c], fresh_vals[c]
                if kind == "strict":
                    if abs(f - b) > 1e-6 * max(1.0, abs(b)):
                        fail(f"{title!r} row {label!r} col {c}: "
                             f"deterministic value changed {b} -> {f}")
                elif kind == "memory":
                    if abs(f - b) > 0.05 * max(1.0, abs(b)):
                        fail(f"{title!r} row {label!r} col {c}: "
                             f"memory changed {b} -> {f} (>5%)")
                else:  # timing; only slower-than-tolerance fails
                    if b >= floor and f > b * (1.0 + tolerance):
                        fail(f"{title!r} row {label!r} col {c}: "
                             f"{f:.3f} vs baseline {b:.3f} "
                             f"(>{1.0 + tolerance:.2f}x)")
        for label in fresh["rows"]:
            if label not in base["rows"]:
                fail(f"{title!r}: new row not in baseline: {label!r}")
    return problems


def run_bench(path, args, timeout=1800):
    try:
        result = subprocess.run([path, *args], capture_output=True,
                                text=True, timeout=timeout)
    except subprocess.TimeoutExpired:
        raise ParseError(
            f"{os.path.basename(path)} timed out after {timeout}s")
    if result.returncode != 0:
        raise ParseError(
            f"{os.path.basename(path)} exited {result.returncode}: "
            f"{result.stderr[:200]}")
    return result.stdout


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--bench-dir", default="build/bench",
                    help="directory holding the bench binaries")
    ap.add_argument("--baseline-dir", default="docs/baselines")
    ap.add_argument("--tolerance", type=float, default=1.0,
                    help="allowed slowdown fraction for timing values "
                         "(1.0 = fresh may be up to 2x the baseline)")
    ap.add_argument("--abs-floor", type=float, default=5.0,
                    help="timing baselines below this many microseconds "
                         "(auto-scaled to each table's unit) are too noisy "
                         "to compare and are skipped")
    ap.add_argument("--update", action="store_true",
                    help="overwrite the baselines with a fresh run")
    ap.add_argument("--only", action="append", default=None,
                    help="restrict to the named bench(es)")
    ap.add_argument("--full", action="store_true",
                    help="run every bench at paper scale (passes --full); "
                         "pair with --baseline-dir docs/baselines/full")
    ap.add_argument("--save-dir", default=None,
                    help="also write each fresh run's raw output to this "
                         "directory (for CI artifacts)")
    args = ap.parse_args()

    bench_args = ["--full"] if args.full else []
    # Paper scale is an order of magnitude bigger; give stragglers room.
    bench_timeout = 7200 if args.full else 1800

    def save_raw(bench, out):
        if args.save_dir is None:
            return
        os.makedirs(args.save_dir, exist_ok=True)
        with open(os.path.join(args.save_dir, bench + ".txt"), "w") as f:
            f.write(out)

    benches = args.only or TABLE_BENCHES
    for b in benches:
        if b not in TABLE_BENCHES and b not in CAPTURE_ONLY_BENCHES:
            print(f"error: unknown bench {b!r}", file=sys.stderr)
            return 2

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        capture = list(benches)
        if args.only is None and not args.full:
            # google-benchmark binaries have no --full flag; their reference
            # captures exist at default scale only.
            capture += CAPTURE_ONLY_BENCHES
        for bench in capture:
            if args.full and bench in CAPTURE_ONLY_BENCHES:
                print(f"skip {bench}: capture-only, no --full support")
                continue
            path = os.path.join(args.bench_dir, bench)
            if not os.path.exists(path):
                print(f"skip {bench}: binary not built")
                continue
            print(f"capturing {bench} ...")
            try:
                out = run_bench(path, bench_args, bench_timeout)
                if bench in TABLE_BENCHES:
                    parse_tables(out)  # refuse to store unparseable output
            except ParseError as e:
                print(f"error: {bench}: {e} (baseline left untouched)",
                      file=sys.stderr)
                return 1
            with open(os.path.join(args.baseline_dir, bench + ".txt"),
                      "w") as f:
                f.write(out)
            save_raw(bench, out)
        print(f"baselines written to {args.baseline_dir}")
        return 0

    all_problems = []
    checked = 0
    for bench in benches:
        baseline_path = os.path.join(args.baseline_dir, bench + ".txt")
        if not os.path.exists(baseline_path):
            all_problems.append(
                f"{bench}: no baseline at {baseline_path} "
                "(run with --update)")
            continue
        binary = os.path.join(args.bench_dir, bench)
        if not os.path.exists(binary):
            all_problems.append(f"{bench}: binary not built at {binary}")
            continue
        print(f"running {bench} ...")
        try:
            with open(baseline_path) as f:
                base_tables = parse_tables(f.read())
            fresh = run_bench(binary, bench_args, bench_timeout)
            save_raw(bench, fresh)
            fresh_tables = parse_tables(fresh)
        except ParseError as e:
            all_problems.append(f"{bench}: {e}")
            continue
        all_problems.extend(compare(bench, base_tables, fresh_tables,
                                    args.tolerance, args.abs_floor))
        checked += 1

    print()
    if all_problems:
        print(f"{len(all_problems)} problem(s):")
        for p in all_problems:
            print(f"  {p}")
        return 1
    print(f"OK: {checked} bench(es) within tolerance "
          f"{args.tolerance:.2f} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
