#!/usr/bin/env python3
"""pti-lint: project-invariant checks generic tools can't know about.

The pti engine has three prose contracts that this linter turns into
machine-checked ones (see docs/STATIC_ANALYSIS.md):

  1. Determinism: anything that can feed serialized index bytes must be
     reproducible — no exceptions for control flow, no wall-clock or
     process-entropy inputs, no iteration over hash-ordered containers while
     writing serde bytes. (The PR 8 contract: any thread count serializes to
     bit-identical v2/v3 bytes.)
  2. Hostile-input serde: decode paths go through the bounds-checked
     Reader/GetSpan APIs, never raw reinterpret_cast, and validation failures
     are Status returns, never assert()s that release builds compile out.
  3. Concurrency hygiene: mutexes are held via RAII guards
     (lock_guard/unique_lock/scoped_lock), never naked .lock()/.unlock().

Token-based (comments and string literals stripped), stdlib-only, no
libclang dependency. Line-granular heuristics by design: the [[nodiscard]]
Status contract in util/status.h is the authoritative compile-time gate for
discarded statuses; the rule here is a backstop that also works on code the
compiler never sees (fixtures, dead #ifdef branches).

Suppressing a finding: append `// pti-lint: allow(<rule-id>)` to the line,
or put it in the comment block immediately above it, with a reason:

    h ^= ptr_hash;  // pti-lint: allow(no-nondeterminism): debug stat only

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import fnmatch
import os
import re
import sys

# ---------------------------------------------------------------------------
# Rules. `scope` / `exclude` are fnmatch patterns over the posix relpath from
# the lint root. A file is checked by a rule iff it matches a scope pattern
# and no exclude pattern.
# ---------------------------------------------------------------------------

CXX_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")

# Paths that decode untrusted bytes or validate query input: release-reachable
# validation there must return Status, not assert() (compiled out in Release).
DECODE_PATHS = [
    "src/core/serde.cc",
    "src/core/serde.h",
    "src/core/usformat.cc",
    "src/core/usformat.h",
    "src/core/uncertain_string.cc",
    "src/net/protocol.cc",
    "src/net/protocol.h",
    "src/util/serial.h",
]


class Rule:
    def __init__(self, rule_id, message, scope, exclude=()):
        self.rule_id = rule_id
        self.message = message
        self.scope = scope
        self.exclude = exclude

    def applies_to(self, relpath):
        if not any(fnmatch.fnmatch(relpath, p) for p in self.scope):
            return False
        return not any(fnmatch.fnmatch(relpath, p) for p in self.exclude)

    def check(self, relpath, sanitized_lines):
        """Yields (line_number, message) findings."""
        raise NotImplementedError


class RegexRule(Rule):
    """Flags every line matching `pattern` (on comment/string-stripped text)."""

    def __init__(self, rule_id, message, scope, pattern, exclude=()):
        super().__init__(rule_id, message, scope, exclude)
        self.pattern = re.compile(pattern)

    def check(self, relpath, sanitized_lines):
        for i, line in enumerate(sanitized_lines, start=1):
            if self.pattern.search(line):
                yield i, self.message


class UnorderedIterationRule(Rule):
    """Iteration over a hash-ordered container in a file that writes serde
    bytes. Hash iteration order is implementation- (and libstdc++-version-)
    defined, so a loop over an unordered_{map,set} that feeds a serde::Writer
    breaks the bit-identical-bytes contract. Collects names of variables and
    members declared with an unordered_* type in the same file, then flags
    range-fors and .begin() iterator loops over those names."""

    DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
    WRITER_RE = re.compile(r"\bWriter\b")

    def check(self, relpath, sanitized_lines):
        text = "\n".join(sanitized_lines)
        if not self.WRITER_RE.search(text):
            return
        names = self._declared_names(text)
        if not names:
            return
        alt = "|".join(re.escape(n) for n in sorted(names))
        range_for = re.compile(
            r"\bfor\s*\([^;()]*:\s*(?:\w+(?:\.|->))*(%s)\s*\)" % alt)
        iter_loop = re.compile(
            r"\bfor\s*\([^;]*=\s*(?:\w+(?:\.|->))*(%s)\s*\.\s*begin\s*\(" % alt)
        for i, line in enumerate(sanitized_lines, start=1):
            m = range_for.search(line) or iter_loop.search(line)
            if m:
                yield i, ("iteration over hash-ordered container '%s' in a "
                          "serde-writing file; order is not deterministic — "
                          "sort keys first or use an ordered container"
                          % m.group(1))

    def _declared_names(self, text):
        """Names declared with an unordered_* type, e.g.
        `std::unordered_map<K, V> seen;` (handles nested template args)."""
        names = set()
        for m in self.DECL_RE.finditer(text):
            pos = m.end()  # just past '<'
            depth = 1
            while pos < len(text) and depth > 0:
                if text[pos] == "<":
                    depth += 1
                elif text[pos] == ">":
                    depth -= 1
                pos += 1
            decl = re.match(r"\s*(?:&|\*)?\s*([A-Za-z_]\w*)\s*[;={(),]",
                            text[pos:pos + 160])
            if decl:
                names.add(decl.group(1))
        return names


RULES = [
    RegexRule(
        "no-throw",
        "throw in src/: the pti library never throws; return a Status "
        "(util/status.h) instead",
        scope=["src/*"],
        pattern=r"\bthrow\b"),
    RegexRule(
        "no-nondeterminism",
        "nondeterministic input (wall clock / process entropy) in src/: "
        "index bytes must be bit-identical across runs; use util/rng.h with "
        "a fixed seed, or std::chrono::steady_clock for timings that never "
        "feed serialized bytes",
        scope=["src/*"],
        pattern=(r"\brand\s*\(|\bsrand\s*\(|\brandom_device\b"
                 r"|\bsystem_clock\b|\bgettimeofday\b|\bclock\s*\(\s*\)"
                 r"|(?<![\w:])time\s*\(")),
    RegexRule(
        "no-raw-reinterpret-cast",
        "reinterpret_cast outside util/serial.h: decode paths must use the "
        "bounds-checked Reader/GetSpan APIs so truncated or hostile bytes "
        "fail with Status::Corruption, not UB",
        scope=["src/*"],
        exclude=["src/util/serial.h"],
        pattern=r"\breinterpret_cast\b"),
    RegexRule(
        "no-naked-lock",
        "naked mutex .lock()/.unlock(): hold mutexes via RAII guards "
        "(std::lock_guard / std::unique_lock / std::scoped_lock) so early "
        "returns and Status propagation cannot leak a held lock",
        scope=["src/*"],
        pattern=r"\b\w+(?:\.|->)(?:try_)?(?:lock|unlock)\s*\(\s*\)"),
    RegexRule(
        "no-assert-in-decode",
        "assert() on a decode/validation path: release builds compile "
        "asserts out, so hostile input would sail through — return "
        "Status::Corruption / Status::InvalidArgument instead "
        "(static_assert is fine)",
        scope=DECODE_PATHS,
        pattern=r"(?<!static_)\bassert\s*\("),
    RegexRule(
        "discarded-status",
        "result of a Status-returning call discarded; check it or propagate "
        "with PTI_RETURN_IF_ERROR / PTI_ASSIGN_OR_RETURN (backstop for the "
        "[[nodiscard]] compile-time gate)",
        scope=["src/*"],
        pattern=(r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))+"
                 r"(?:Save|Load|Validate|Reload|ExpectSectionEnd"
                 r"|Get[A-Z]\w*|Skip)\s*\([^=]*\)\s*;\s*$")),
    UnorderedIterationRule(
        "unordered-iteration-in-serde",
        "hash-ordered iteration while writing serde bytes",
        scope=["src/*"]),
]

SUPPRESS_RE = re.compile(r"pti-lint:\s*allow\(([^)]*)\)")


def sanitize(source):
    """Replaces comments and string/char literal contents with spaces,
    preserving line structure, and returns (sanitized_lines, suppressions)
    where suppressions maps line number -> set of allowed rule ids ('*' for
    all). Handles //, /* */, "..." (with escapes), '...', and R"delim(...)"
    raw strings."""
    suppressions = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = SUPPRESS_RE.search(line)
        if m:
            ids = {s.strip() for s in m.group(1).split(",") if s.strip()}
            suppressions[i] = ids or {"*"}

    out = []
    i, n = 0, len(source)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW = range(6)
    state = NORMAL
    raw_end = ""
    while i < n:
        c = source[i]
        nxt = source[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
            elif c == "R" and nxt == '"' and (
                    not out or not (out[-1].isalnum() or out[-1] == "_")):
                m = re.match(r'R"([^(\s\\"]{0,16})\(', source[i:])
                if m:
                    raw_end = ")%s\"" % m.group(1)
                    state = RAW
                    out.append(" " * len(m.group(0)))
                    i += len(m.group(0))
                else:
                    out.append(c)
                    i += 1
            elif c == '"':
                state = STRING
                out.append(c)
                i += 1
            elif c == "'":
                state = CHAR
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == STRING:
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = NORMAL
                out.append(c)
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == CHAR:
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = NORMAL
                out.append(c)
                i += 1
            else:
                out.append(" ")
                i += 1
        elif state == RAW:
            if source.startswith(raw_end, i):
                state = NORMAL
                out.append(" " * len(raw_end))
                i += len(raw_end)
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out).splitlines(), suppressions


def lint_file(root, relpath):
    path = os.path.join(root, relpath)
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            source = f.read()
    except OSError as e:
        raise SystemExit("pti-lint: cannot read %s: %s" % (path, e))
    sanitized_lines, suppressions = sanitize(source)

    def allowed_rules(line_no):
        """Suppressions on the line itself plus any comment block directly
        above it (so a multi-line justification comment still applies)."""
        allowed = set(suppressions.get(line_no, set()))
        prev = line_no - 1
        while prev >= 1 and not sanitized_lines[prev - 1].strip():
            allowed |= suppressions.get(prev, set())
            prev -= 1
        return allowed

    findings = []
    for rule in RULES:
        if not rule.applies_to(relpath):
            continue
        for line_no, message in rule.check(relpath, sanitized_lines):
            allowed = allowed_rules(line_no)
            if "*" in allowed or rule.rule_id in allowed:
                continue
            findings.append((relpath, line_no, rule.rule_id, message))
    return findings


def collect_files(root, paths):
    files = []
    for p in paths:
        full = os.path.join(root, p)
        if os.path.isfile(full):
            files.append(os.path.relpath(full, root))
        elif os.path.isdir(full):
            for dirpath, _, filenames in os.walk(full):
                for name in sorted(filenames):
                    if name.endswith(CXX_EXTENSIONS):
                        files.append(
                            os.path.relpath(os.path.join(dirpath, name), root))
        else:
            raise SystemExit("pti-lint: no such path: %s" % full)
    return sorted(set(f.replace(os.sep, "/") for f in files))


def main(argv):
    parser = argparse.ArgumentParser(
        description="pti project-invariant linter (see docs/STATIC_ANALYSIS.md)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories relative to --root "
                             "(default: src)")
    parser.add_argument("--root", default=None,
                        help="repo root the scope patterns are relative to "
                             "(default: the script's parent repo)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and descriptions, then exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print("%-30s %s" % (rule.rule_id, rule.message))
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or ["src"]
    findings = []
    for relpath in collect_files(root, paths):
        findings.extend(lint_file(root, relpath))

    findings.sort()
    for relpath, line_no, rule_id, message in findings:
        print("%s:%d: [%s] %s" % (relpath, line_no, rule_id, message))
    if findings:
        print("pti-lint: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
