// Figure 7 (§8.2-§8.5): substring-searching query time.
//
//   (a) vs string length n, theta series      (§8.2; tau_min=.1, tau=.2)
//   (b) vs query threshold tau, theta series  (§8.3; n fixed)
//   (c) vs construction tau_min, theta series (§8.4; n fixed, tau=.2)
//   (d) vs pattern length m, theta series     (§8.5; long-pattern regime)
//
// The paper averages query time over pattern lengths {10, 100, 500, 1000};
// panels (a)-(c) reproduce that workload, panel (d) sweeps m explicitly.
// Times are microseconds per query (the paper's absolute numbers are
// hardware-bound; the shapes are what is compared — see EXPERIMENTS.md).

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "core/substring_index.h"
#include "datagen/datagen.h"

namespace pti {
namespace {

constexpr double kThetas[] = {0.1, 0.2, 0.3, 0.4};

SubstringIndex BuildIndex(int64_t n, double theta, double tau_min,
                          uint64_t seed) {
  DatasetOptions data;
  data.length = n;
  data.theta = theta;
  data.seed = seed;
  const UncertainString s = GenerateUncertainString(data);
  IndexOptions options;
  options.transform.tau_min = tau_min;
  auto index = SubstringIndex::Build(s, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(index).value();
}

// The paper's mixed workload: equal numbers of patterns of each length.
std::vector<std::string> MixedWorkload(const UncertainString& s,
                                       size_t per_length, uint64_t seed) {
  std::vector<std::string> patterns;
  for (const size_t m : {size_t{10}, size_t{100}, size_t{500}, size_t{1000}}) {
    const auto batch = SamplePatterns(s, per_length, m, seed + m);
    patterns.insert(patterns.end(), batch.begin(), batch.end());
  }
  return patterns;
}

double AvgQueryUs(const SubstringIndex& index,
                  const std::vector<std::string>& patterns, double tau) {
  std::vector<Match> out;
  // Warm-up pass: touch the index structures outside the timed region.
  for (const auto& p : patterns) (void)index.Query(p, tau, &out);
  size_t total_matches = 0;
  const double ms = bench::TimeMs([&] {
    for (const auto& p : patterns) {
      (void)index.Query(p, tau, &out);
      total_matches += out.size();
    }
  });
  return ms * 1000.0 / static_cast<double>(patterns.size());
}

void PanelA(bool full) {
  std::vector<int64_t> sizes = {25000, 50000, 100000};
  if (full) sizes = {25000, 50000, 100000, 200000, 300000};
  bench::Table table("n");
  std::vector<std::string> cols;
  for (const double theta : kThetas) {
    cols.push_back("theta=" + bench::FmtDouble(theta));
  }
  table.SetColumns(cols);
  for (const int64_t n : sizes) {
    std::vector<double> row;
    for (const double theta : kThetas) {
      const SubstringIndex index = BuildIndex(n, theta, 0.1, 7);
      const auto patterns = MixedWorkload(index.source(), 50, 1000);
      row.push_back(AvgQueryUs(index, patterns, 0.2));
    }
    table.AddRow(bench::FmtInt(n), row);
  }
  table.Print("Figure 7(a): substring query time vs string size", "us/query");
}

void PanelB(bool full) {
  // The tau effect is output-size driven (lower tau => more occurrences per
  // query). The protein alphabet makes occurrence counts tiny on our
  // hardware, so this panel uses the 4-letter variant of the §8.1 protocol
  // — same uncertainty structure, occurrence-rich patterns — to surface the
  // same phenomenon the paper plots (see EXPERIMENTS.md).
  const int64_t n = full ? 200000 : 50000;
  bench::Table table("tau");
  std::vector<std::string> cols;
  std::vector<SubstringIndex> indexes;
  std::vector<std::vector<std::string>> workloads;
  for (const double theta : kThetas) {
    cols.push_back("theta=" + bench::FmtDouble(theta));
    DatasetOptions data;
    data.length = n;
    data.theta = theta;
    data.alphabet = 4;
    data.seed = 11;
    const UncertainString s = GenerateUncertainString(data);
    IndexOptions options;
    options.transform.tau_min = 0.1;
    auto index = SubstringIndex::Build(s, options);
    if (!index.ok()) std::exit(1);
    indexes.push_back(std::move(index).value());
    workloads.push_back(SamplePatterns(indexes.back().source(), 200, 6, 2000));
  }
  table.SetColumns(cols);
  for (const double tau : {0.10, 0.11, 0.12, 0.13, 0.14, 0.15}) {
    std::vector<double> row;
    for (size_t t = 0; t < indexes.size(); ++t) {
      row.push_back(AvgQueryUs(indexes[t], workloads[t], tau));
    }
    table.AddRow(bench::FmtDouble(tau), row);
  }
  table.Print("Figure 7(b): substring query time vs tau "
              "(4-letter alphabet variant)", "us/query");
}

void PanelC(bool full) {
  const int64_t n = full ? 100000 : 25000;
  bench::Table table("tau_min");
  std::vector<std::string> cols;
  for (const double theta : kThetas) {
    cols.push_back("theta=" + bench::FmtDouble(theta));
  }
  table.SetColumns(cols);
  for (const double tau_min : {0.04, 0.08, 0.12, 0.16, 0.20}) {
    std::vector<double> row;
    for (const double theta : kThetas) {
      const SubstringIndex index = BuildIndex(n, theta, tau_min, 13);
      const auto patterns = MixedWorkload(index.source(), 50, 3000);
      row.push_back(AvgQueryUs(index, patterns, 0.2));
    }
    table.AddRow(bench::FmtDouble(tau_min), row);
  }
  table.Print("Figure 7(c): substring query time vs tau_min (tau=0.2)",
              "us/query");
}

void PanelD(bool full) {
  const int64_t n = full ? 200000 : 50000;
  bench::Table table("m");
  std::vector<std::string> cols;
  std::vector<SubstringIndex> indexes;
  for (const double theta : kThetas) {
    cols.push_back("theta=" + bench::FmtDouble(theta));
    indexes.push_back(BuildIndex(n, theta, 0.1, 17));
  }
  table.SetColumns(cols);
  for (const size_t m : {5, 10, 15, 20, 25}) {
    std::vector<double> row;
    for (auto& index : indexes) {
      const auto patterns = SamplePatterns(index.source(), 200, m, 4000 + m);
      row.push_back(AvgQueryUs(index, patterns, 0.1));
    }
    table.AddRow(std::to_string(m), row);
  }
  table.Print("Figure 7(d): substring query time vs pattern length m",
              "us/query");
}

// Batch mode (not a paper panel): one-at-a-time Query loop vs QueryBatch
// over a shared-prefix workload — the regime the batched path's locus
// amortization (sorted patterns, prefix-resumed descent, per-group RMQ
// extraction) is built for.
void PanelE(bool full) {
  const int64_t n = full ? 200000 : 50000;
  constexpr size_t kBatch = 256;
  bench::Table table("theta");
  table.SetColumns({"loop", "batch", "speedup"});
  for (const double theta : kThetas) {
    const SubstringIndex index = BuildIndex(n, theta, 0.1, 23);
    const auto patterns =
        SampleSharedPrefixPatterns(index.source(), kBatch, 8, 12, 9000);
    std::vector<BatchQuery> queries;
    queries.reserve(patterns.size());
    for (const auto& p : patterns) queries.push_back({p, 0.2});
    std::vector<Match> out;
    std::vector<std::vector<Match>> batch_out;
    // Warm-up both paths, then keep the best of three timed passes.
    (void)index.QueryBatch(queries, &batch_out);
    for (const auto& q : queries) (void)index.Query(q.pattern, q.tau, &out);
    double loop_ms = 1e300, batch_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      loop_ms = std::min(loop_ms, bench::TimeMs([&] {
        for (const auto& q : queries) {
          (void)index.Query(q.pattern, q.tau, &out);
        }
      }));
      batch_ms = std::min(batch_ms, bench::TimeMs([&] {
        (void)index.QueryBatch(queries, &batch_out);
      }));
    }
    const double per = static_cast<double>(queries.size());
    table.AddRow(bench::FmtDouble(theta),
                 {loop_ms * 1000.0 / per, batch_ms * 1000.0 / per,
                  loop_ms / batch_ms});
  }
  table.Print("Figure 7(e): batched vs one-at-a-time queries "
              "(256 shared-prefix patterns)",
              "us/query; speedup is a ratio");
}

}  // namespace

void RunFig7(const bench::Args& args) {
  std::printf("=== bench_fig7_substring (%s scale) ===\n",
              args.full ? "paper" : "default");
  if (bench::RunPanel(args, "a")) PanelA(args.full);
  if (bench::RunPanel(args, "b")) PanelB(args.full);
  if (bench::RunPanel(args, "c")) PanelC(args.full);
  if (bench::RunPanel(args, "d")) PanelD(args.full);
  if (bench::RunPanel(args, "e")) PanelE(args.full);
}

}  // namespace pti

int main(int argc, char** argv) {
  pti::RunFig7(pti::bench::ParseArgs(argc, argv));
  return 0;
}
