// Ablation: factor-transformation blowup (Lemma 2 / DESIGN.md §2.2).
//
// Measures the transformed length N as a multiple of the original length n
// across tau_min and theta — the empirical check of the paper's
// O((1/tau_min)^2 n) bound — plus factor counts and transform time.

#include <vector>

#include "bench_util.h"
#include "core/factor_transform.h"
#include "datagen/datagen.h"

namespace pti {

void RunTransform(const bench::Args& args) {
  const int64_t n = args.full ? 100000 : 25000;
  std::printf("=== bench_ablation_transform (n = %lld) ===\n",
              static_cast<long long>(n));
  bench::Table blowup("tau_min");
  bench::Table factors("tau_min");
  bench::Table timing("tau_min");
  std::vector<std::string> cols;
  for (const double theta : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    cols.push_back("theta=" + bench::FmtDouble(theta));
  }
  blowup.SetColumns(cols);
  factors.SetColumns(cols);
  timing.SetColumns(cols);
  for (const double tau_min : {0.04, 0.08, 0.12, 0.16, 0.20}) {
    std::vector<double> brow, frow, trow;
    for (const double theta : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      DatasetOptions data;
      data.length = n;
      data.theta = theta;
      data.seed = 31;
      const UncertainString s = GenerateUncertainString(data);
      TransformOptions options;
      options.tau_min = tau_min;
      StatusOr<FactorSet> fs = FactorSet{};
      const double ms =
          bench::TimeMs([&] { fs = TransformToFactors(s, options); });
      if (!fs.ok()) {
        std::fprintf(stderr, "transform failed: %s\n",
                     fs.status().ToString().c_str());
        std::exit(1);
      }
      brow.push_back(static_cast<double>(fs->total_length()) /
                     static_cast<double>(n));
      frow.push_back(static_cast<double>(fs->num_factors()));
      trow.push_back(ms);
    }
    blowup.AddRow(bench::FmtDouble(tau_min), brow);
    factors.AddRow(bench::FmtDouble(tau_min), frow);
    timing.AddRow(bench::FmtDouble(tau_min), trow);
  }
  blowup.Print("Transformed length N as a multiple of n "
               "(paper bound: (1/tau_min)^2)", "N/n");
  factors.Print("Number of maximal factors", "count");
  timing.Print("Transform time", "ms");
}

}  // namespace pti

int main(int argc, char** argv) {
  pti::RunTransform(pti::bench::ParseArgs(argc, argv));
  return 0;
}
