// Ablation: RMQ engine choice (DESIGN.md §2.1).
//
// Compares the three engines behind the indexes — BlockRmq (production),
// FischerHeunRmq (the paper's Lemma 1 structure), SparseTableRmq (baseline)
// — plus a plain linear scan, on construction time, query time and memory.
// google-benchmark binary: supports --benchmark_filter etc.

#include <benchmark/benchmark.h>

#include <vector>

#include "rmq/block_rmq.h"
#include "rmq/fischer_heun_rmq.h"
#include "rmq/sparse_table_rmq.h"
#include "util/rng.h"

namespace {

struct VecFn {
  const std::vector<double>* v;
  double operator()(size_t i) const { return (*v)[i]; }
};

std::vector<double> MakeValues(size_t n) {
  pti::Rng rng(42);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.UniformDouble();
  return v;
}

// Random query ranges shared across engines for comparability.
std::vector<std::pair<size_t, size_t>> MakeRanges(size_t n, size_t count) {
  pti::Rng rng(7);
  std::vector<std::pair<size_t, size_t>> ranges;
  for (size_t i = 0; i < count; ++i) {
    size_t l = rng.Uniform(n);
    size_t r = rng.Uniform(n);
    if (l > r) std::swap(l, r);
    ranges.emplace_back(l, r);
  }
  return ranges;
}

template <typename Engine>
void QueryLoop(const Engine& engine,
               const std::vector<std::pair<size_t, size_t>>& ranges,
               benchmark::State& state) {
  size_t i = 0;
  for (auto _ : state) {
    const auto& [l, r] = ranges[i++ % ranges.size()];
    benchmark::DoNotOptimize(engine.ArgMax(l, r));
  }
}

void BM_Build_Block(benchmark::State& state) {
  const auto v = MakeValues(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    pti::BlockRmq<VecFn> rmq(VecFn{&v}, v.size());
    benchmark::DoNotOptimize(rmq.MemoryUsage());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Build_Block)->Arg(1 << 16)->Arg(1 << 20);

void BM_Build_FischerHeun(benchmark::State& state) {
  const auto v = MakeValues(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    pti::FischerHeunRmq<VecFn> rmq(VecFn{&v}, v.size());
    benchmark::DoNotOptimize(rmq.MemoryUsage());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Build_FischerHeun)->Arg(1 << 16)->Arg(1 << 20);

void BM_Build_SparseTable(benchmark::State& state) {
  const auto v = MakeValues(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    pti::SparseTableRmq<VecFn> rmq(VecFn{&v}, v.size());
    benchmark::DoNotOptimize(rmq.MemoryUsage());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Build_SparseTable)->Arg(1 << 16)->Arg(1 << 20);

void BM_Query_Block(benchmark::State& state) {
  const auto v = MakeValues(static_cast<size_t>(state.range(0)));
  const pti::BlockRmq<VecFn> rmq(VecFn{&v}, v.size());
  const auto ranges = MakeRanges(v.size(), 1024);
  QueryLoop(rmq, ranges, state);
  state.counters["bytes"] = static_cast<double>(rmq.MemoryUsage());
}
BENCHMARK(BM_Query_Block)->Arg(1 << 16)->Arg(1 << 20);

void BM_Query_FischerHeun(benchmark::State& state) {
  const auto v = MakeValues(static_cast<size_t>(state.range(0)));
  const pti::FischerHeunRmq<VecFn> rmq(VecFn{&v}, v.size());
  const auto ranges = MakeRanges(v.size(), 1024);
  QueryLoop(rmq, ranges, state);
  state.counters["bytes"] = static_cast<double>(rmq.MemoryUsage());
}
BENCHMARK(BM_Query_FischerHeun)->Arg(1 << 16)->Arg(1 << 20);

void BM_Query_SparseTable(benchmark::State& state) {
  const auto v = MakeValues(static_cast<size_t>(state.range(0)));
  const pti::SparseTableRmq<VecFn> rmq(VecFn{&v}, v.size());
  const auto ranges = MakeRanges(v.size(), 1024);
  QueryLoop(rmq, ranges, state);
  state.counters["bytes"] = static_cast<double>(rmq.MemoryUsage());
}
BENCHMARK(BM_Query_SparseTable)->Arg(1 << 16)->Arg(1 << 20);

void BM_Query_LinearScan(benchmark::State& state) {
  const auto v = MakeValues(static_cast<size_t>(state.range(0)));
  const auto ranges = MakeRanges(v.size(), 1024);
  const VecFn fn{&v};
  size_t i = 0;
  for (auto _ : state) {
    const auto& [l, r] = ranges[i++ % ranges.size()];
    benchmark::DoNotOptimize(pti::BruteForceArgMax(fn, l, r));
  }
}
BENCHMARK(BM_Query_LinearScan)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
