// Fuzzy (k-error) threshold query benchmarks (not a paper figure): what the
// two indexed fuzzy paths buy over the brute-force oracle, and what fuzzy
// costs relative to exact queries.
//
//   (a) k-mismatch latency: tree seed-and-extend vs compact FM branching
//       backward search vs the BruteForceFuzzy oracle, across pattern
//       lengths at k=1.
//   (b) k-edit latency: the same comparison under edit distance, where the
//       branching factor (insertions/deletions) is larger.
//   (c) batch vs loop: QueryFuzzyBatch's grouped enumeration (one variant
//       walk per distinct (pattern, metric, k) at the group-min tau)
//       against a one-at-a-time loop, at k=1 and k=2.
//   (d) k=0 overhead: QueryFuzzy with k=0 delegates to the exact Query
//       path; this panel keeps that delegation free.
//
// Brute force is linear in n with a per-position variant enumeration, so
// its columns dominate the runtime; the pattern counts are kept small.

#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/fuzzy.h"
#include "core/substring_index.h"
#include "datagen/datagen.h"

namespace pti {
namespace {

constexpr double kTheta = 0.2;
constexpr double kTauMin = 0.1;
constexpr double kTau = 0.2;

UncertainString MakeInput(int64_t n) {
  DatasetOptions data;
  data.length = n;
  data.theta = kTheta;
  data.seed = 73;
  return GenerateUncertainString(data);
}

SubstringIndex BuildIndex(const UncertainString& s, bool compact) {
  IndexOptions options;
  options.transform.tau_min = kTauMin;
  options.compact = compact;
  auto index = SubstringIndex::Build(s, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(index).value();
}

// Per-query latency of the three implementations for one (metric, k).
void LatencyPanel(bool full, FuzzyMetric metric, const char* title) {
  const int64_t n = full ? 100000 : 20000;
  const UncertainString s = MakeInput(n);
  const SubstringIndex tree = BuildIndex(s, /*compact=*/false);
  const SubstringIndex comp = BuildIndex(s, /*compact=*/true);
  FuzzyParams params;
  params.k = 1;
  params.metric = metric;

  bench::Table table("m");
  table.SetColumns({"tree", "compact", "brute"});
  for (const size_t m : {4, 8, 16}) {
    const auto patterns = SamplePatterns(s, 12, m, 9000 + m);
    const double per = static_cast<double>(patterns.size());
    std::vector<Match> out;
    std::vector<double> row;
    for (const SubstringIndex* index : {&tree, &comp}) {
      for (const auto& p : patterns) {
        (void)index->QueryFuzzy(p, kTau, params, &out);
      }
      const double ms = bench::TimeMs([&] {
        for (const auto& p : patterns) {
          (void)index->QueryFuzzy(p, kTau, params, &out);
        }
      });
      row.push_back(ms * 1000.0 / per);
    }
    const double brute_ms = bench::TimeMs([&] {
      for (const auto& p : patterns) (void)BruteForceFuzzy(s, p, kTau, params);
    });
    row.push_back(brute_ms * 1000.0 / per);
    table.AddRow(std::to_string(m), row);
  }
  table.Print(title, "us/query");
}

void PanelC(bool full) {
  const int64_t n = full ? 100000 : 20000;
  constexpr size_t kBatch = 64;
  const UncertainString s = MakeInput(n);
  const SubstringIndex index = BuildIndex(s, /*compact=*/true);
  // 16 distinct patterns, each queried at 4 taus: the batch path walks the
  // variant space once per (pattern, metric, k) group at the group-min tau
  // and re-filters, so repeats are where it wins over the loop.
  const auto patterns = SamplePatterns(s, kBatch / 4, 8, 9100);

  bench::Table table("k");
  table.SetColumns({"loop", "batch", "speedup"});
  for (const int32_t k : {1, 2}) {
    FuzzyParams params;
    params.k = k;
    std::vector<FuzzyBatchQuery> queries;
    for (size_t i = 0; i < kBatch; ++i) {
      queries.push_back(
          {patterns[i % patterns.size()],
           kTau + 0.001 * static_cast<double>(i % 4), params});
    }
    std::vector<Match> out;
    std::vector<std::vector<Match>> batch_out;
    (void)index.QueryFuzzyBatch(queries, &batch_out);
    for (const auto& q : queries) {
      (void)index.QueryFuzzy(q.pattern, q.tau, q.params, &out);
    }
    double loop_ms = 1e300, batch_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      loop_ms = std::min(loop_ms, bench::TimeMs([&] {
        for (const auto& q : queries) {
          (void)index.QueryFuzzy(q.pattern, q.tau, q.params, &out);
        }
      }));
      batch_ms = std::min(batch_ms, bench::TimeMs([&] {
        (void)index.QueryFuzzyBatch(queries, &batch_out);
      }));
    }
    const double per = static_cast<double>(queries.size());
    table.AddRow("k=" + std::to_string(k),
                 {loop_ms * 1000.0 / per, batch_ms * 1000.0 / per,
                  loop_ms / batch_ms});
  }
  table.Print("Fuzzy (c): batch vs loop, compact index "
              "(64 mismatch patterns, mixed taus)",
              "us/query; speedup is a ratio");
}

void PanelD(bool full) {
  const int64_t n = full ? 100000 : 20000;
  const UncertainString s = MakeInput(n);
  const SubstringIndex index = BuildIndex(s, /*compact=*/false);
  FuzzyParams params;
  params.k = 0;

  bench::Table table("m");
  table.SetColumns({"exact", "fuzzy k=0", "speedup"});
  for (const size_t m : {4, 8, 16}) {
    const auto patterns = SamplePatterns(s, 100, m, 9200 + m);
    const double per = static_cast<double>(patterns.size());
    std::vector<Match> out;
    for (const auto& p : patterns) (void)index.Query(p, kTau, &out);
    double exact_ms = 1e300, fuzzy_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      exact_ms = std::min(exact_ms, bench::TimeMs([&] {
        for (const auto& p : patterns) (void)index.Query(p, kTau, &out);
      }));
      fuzzy_ms = std::min(fuzzy_ms, bench::TimeMs([&] {
        for (const auto& p : patterns) {
          (void)index.QueryFuzzy(p, kTau, params, &out);
        }
      }));
    }
    table.AddRow(std::to_string(m),
                 {exact_ms * 1000.0 / per, fuzzy_ms * 1000.0 / per,
                  exact_ms / fuzzy_ms});
  }
  table.Print("Fuzzy (d): k=0 delegation overhead vs exact Query",
              "us/query; speedup is a ratio");
}

}  // namespace

void RunFuzzy(const bench::Args& args) {
  std::printf("=== bench_fuzzy (%s scale) ===\n",
              args.full ? "paper" : "default");
  if (bench::RunPanel(args, "a")) {
    LatencyPanel(args.full, FuzzyMetric::kMismatch,
                 "Fuzzy (a): k=1 mismatch latency, tree vs compact vs brute");
  }
  if (bench::RunPanel(args, "b")) {
    LatencyPanel(args.full, FuzzyMetric::kEdit,
                 "Fuzzy (b): k=1 edit latency, tree vs compact vs brute");
  }
  if (bench::RunPanel(args, "c")) PanelC(args.full);
  if (bench::RunPanel(args, "d")) PanelD(args.full);
}

}  // namespace pti

int main(int argc, char** argv) {
  pti::RunFuzzy(pti::bench::ParseArgs(argc, argv));
  return 0;
}
