// Ablation: exact (§5) vs approximate (§7) index.
//
// Sweeps epsilon and reports, per query: time for both indexes, the exact
// match count, the approximate match count (>= exact by design), and the
// approximate index's link count / memory (which grow as epsilon shrinks).

#include <vector>

#include "bench_util.h"
#include "core/approx_index.h"
#include "core/substring_index.h"
#include "datagen/datagen.h"

namespace pti {

void RunApprox(const bench::Args& args) {
  const int64_t n = args.full ? 100000 : 20000;
  std::printf("=== bench_ablation_approx (n = %lld) ===\n",
              static_cast<long long>(n));
  DatasetOptions data;
  data.length = n;
  data.theta = 0.3;
  data.seed = 23;
  const UncertainString s = GenerateUncertainString(data);

  IndexOptions exact_options;
  exact_options.transform.tau_min = 0.1;
  auto exact = SubstringIndex::Build(s, exact_options);
  if (!exact.ok()) std::exit(1);

  const auto patterns = SamplePatterns(s, 300, 6, 77);
  const double tau = 0.2;

  std::vector<Match> out;
  size_t exact_matches = 0;
  const double exact_ms = bench::TimeMs([&] {
    for (const auto& p : patterns) {
      (void)exact->Query(p, tau, &out);
      exact_matches += out.size();
    }
  });

  bench::Table table("epsilon");
  table.SetColumns({"approx us/q", "exact us/q", "approx hits", "exact hits",
                    "links", "MB"});
  for (const double eps : {0.20, 0.10, 0.05, 0.02, 0.01}) {
    ApproxOptions options;
    options.transform.tau_min = 0.1;
    options.epsilon = eps;
    auto approx = ApproxIndex::Build(s, options);
    if (!approx.ok()) std::exit(1);
    size_t approx_matches = 0;
    const double approx_ms = bench::TimeMs([&] {
      for (const auto& p : patterns) {
        (void)approx->Query(p, tau, &out);
        approx_matches += out.size();
      }
    });
    table.AddRow(bench::FmtDouble(eps),
                 {approx_ms * 1000 / patterns.size(),
                  exact_ms * 1000 / patterns.size(),
                  static_cast<double>(approx_matches) / patterns.size(),
                  static_cast<double>(exact_matches) / patterns.size(),
                  static_cast<double>(approx->stats().num_links),
                  approx->MemoryUsage() / 1048576.0});
  }
  table.Print("Exact (5) vs approximate (7) at tau = 0.2", "mixed units");
}

}  // namespace pti

int main(int argc, char** argv) {
  pti::RunApprox(pti::bench::ParseArgs(argc, argv));
  return 0;
}
