// Figure 9 (§8.6-§8.7): construction time and index space.
//
//   (a) construction time vs string size n, theta series
//   (b) construction time vs tau_min, theta series
//   (c) index space (MB) vs string size n, theta series, plus the space
//       accounting the paper does in §8.7 (its estimate: ~10.5 N words).
//   (d) parallel construction: compact build time vs thread count at fixed
//       input, with the derived speedup-vs-1-thread column (the speedup
//       column is informational — check_bench.py skips it, since it only
//       reflects real parallelism on a multi-core host).
//
// Construction times are seconds; space is bytes as measured by
// MemoryUsage() (real allocations, not the paper's back-of-envelope words).

#include <vector>

#include "bench_util.h"
#include "core/substring_index.h"
#include "datagen/datagen.h"

namespace pti {
namespace {

constexpr double kThetas[] = {0.1, 0.2, 0.3, 0.4};

UncertainString MakeString(int64_t n, double theta, uint64_t seed) {
  DatasetOptions data;
  data.length = n;
  data.theta = theta;
  data.seed = seed;
  return GenerateUncertainString(data);
}

void PanelA(bool full) {
  std::vector<int64_t> sizes = {25000, 50000, 100000};
  if (full) sizes = {25000, 50000, 100000, 200000, 300000};
  bench::Table table("n");
  std::vector<std::string> cols;
  for (const double theta : kThetas) {
    cols.push_back("theta=" + bench::FmtDouble(theta));
  }
  table.SetColumns(cols);
  for (const int64_t n : sizes) {
    std::vector<double> row;
    for (const double theta : kThetas) {
      const UncertainString s = MakeString(n, theta, 7);
      IndexOptions options;
      options.transform.tau_min = 0.1;
      const double ms = bench::TimeMs([&] {
        const auto index = SubstringIndex::Build(s, options);
        if (!index.ok()) std::exit(1);
      });
      row.push_back(ms / 1000.0);
    }
    table.AddRow(bench::FmtInt(n), row);
  }
  table.Print("Figure 9(a): construction time vs string size", "seconds");
}

void PanelB(bool full) {
  const int64_t n = full ? 100000 : 50000;
  bench::Table table("tau_min");
  std::vector<std::string> cols;
  for (const double theta : kThetas) {
    cols.push_back("theta=" + bench::FmtDouble(theta));
  }
  table.SetColumns(cols);
  for (const double tau_min : {0.04, 0.08, 0.12, 0.16, 0.20}) {
    std::vector<double> row;
    for (const double theta : kThetas) {
      const UncertainString s = MakeString(n, theta, 11);
      IndexOptions options;
      options.transform.tau_min = tau_min;
      const double ms = bench::TimeMs([&] {
        const auto index = SubstringIndex::Build(s, options);
        if (!index.ok()) std::exit(1);
      });
      row.push_back(ms / 1000.0);
    }
    table.AddRow(bench::FmtDouble(tau_min), row);
  }
  table.Print("Figure 9(b): construction time vs tau_min", "seconds");
}

void PanelC(bool full) {
  std::vector<int64_t> sizes = {25000, 50000, 100000};
  if (full) sizes = {25000, 50000, 100000, 200000, 300000};
  bench::Table table("n");
  std::vector<std::string> cols;
  for (const double theta : kThetas) {
    cols.push_back("theta=" + bench::FmtDouble(theta));
  }
  table.SetColumns(cols);
  size_t last_bytes = 0;
  size_t last_N = 1;
  for (const int64_t n : sizes) {
    std::vector<double> row;
    for (const double theta : kThetas) {
      const UncertainString s = MakeString(n, theta, 13);
      IndexOptions options;
      options.transform.tau_min = 0.1;
      const auto index = SubstringIndex::Build(s, options);
      if (!index.ok()) std::exit(1);
      row.push_back(static_cast<double>(index->MemoryUsage()) / 1048576.0);
      last_bytes = index->MemoryUsage();
      last_N = index->stats().transformed_length;
    }
    table.AddRow(bench::FmtInt(n), row);
  }
  table.Print("Figure 9(c): index space vs string size", "MB");
  // §8.7-style accounting: the paper estimates ~10.5 N words total; report
  // our measured bytes-per-transformed-character for comparison.
  std::printf("\n  space accounting (largest build): %.1f bytes per "
              "transformed character (N = %zu)\n",
              static_cast<double>(last_bytes) / static_cast<double>(last_N),
              last_N);
}

void PanelD(bool full) {
  // Fixed input, compact mode (the mode with the fully parallel pipeline:
  // PLCP LCP, FM overlap, succinct fills, RMQ forest).
  const int64_t n = full ? 200000 : 50000;
  const UncertainString s = MakeString(n, 0.2, 17);
  IndexOptions options;
  options.transform.tau_min = 0.1;
  options.compact = true;
  bench::Table table("threads");
  table.SetColumns({"build_s", "speedup"});
  double serial_s = 0.0;
  for (const int32_t threads : {1, 2, 4, 8}) {
    SubstringIndex::BuildOptions build;
    build.threads = threads;
    const double ms = bench::TimeMs([&] {
      const auto index = SubstringIndex::Build(s, options, build);
      if (!index.ok()) std::exit(1);
    });
    const double secs = ms / 1000.0;
    if (threads == 1) serial_s = secs;
    table.AddRow(bench::FmtInt(threads),
                 {secs, serial_s > 0.0 ? serial_s / secs : 0.0});
  }
  table.Print("Figure 9(d): construction time vs thread count", "seconds");
}

}  // namespace

void RunFig9(const bench::Args& args) {
  std::printf("=== bench_fig9_construction (%s scale) ===\n",
              args.full ? "paper" : "default");
  if (bench::RunPanel(args, "a")) PanelA(args.full);
  if (bench::RunPanel(args, "b")) PanelB(args.full);
  if (bench::RunPanel(args, "c")) PanelC(args.full);
  if (bench::RunPanel(args, "d")) PanelD(args.full);
}

}  // namespace pti

int main(int argc, char** argv) {
  pti::RunFig9(pti::bench::ParseArgs(argc, argv));
  return 0;
}
