// Network serving benchmarks (not a paper figure): what the TCP front end
// (net/server.h) costs over calling the ServingEngine in-process, and how
// bounded admission behaves when the offered load exceeds capacity.
//
//   (a) closed-loop loopback overhead: each client holds one request in
//       flight (submit, wait, repeat) against the same cold engine, once
//       in-process and once through a loopback NetServer + NetClient. The
//       gap is the framing + syscall + thread-handoff tax per request.
//   (b) open-loop admission: capacity is measured first with a closed loop,
//       then a paced sender offers 1.0x and 2.0x that rate through one
//       pipelined connection while a receiver drains responses. Past
//       capacity the bounded lane sheds with Unavailable instead of
//       queueing without bound: "shed pct" rises, completed-request p99
//       stays bounded by the lane depth, and "goodput r" (completed/sec
//       relative to the 1.0x run) holds — the overload acceptance gate.
//
// All columns are timing-shaped (us, percentages, ratios), never absolute
// throughput, so scripts/check_bench.py compares them machine-relatively.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "datagen/datagen.h"
#include "engine/serving_engine.h"
#include "engine/sharded_index.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"

namespace pti {
namespace {

constexpr double kTheta = 0.2;
constexpr double kTauMin = 0.1;
constexpr double kTau = 0.1;
constexpr size_t kRequests = 2048;
constexpr int32_t kWorkers = 2;

using Clock = std::chrono::steady_clock;

UncertainString MakeInput(int64_t n) {
  DatasetOptions data;
  data.length = n;
  data.theta = kTheta;
  data.seed = 73;
  return GenerateUncertainString(data);
}

ShardedIndex BuildSharded(const UncertainString& s) {
  ShardedIndexOptions options;
  options.index.transform.tau_min = kTauMin;
  options.num_shards = 4;
  options.overlap = 32;
  options.num_threads = kWorkers;
  auto index = ShardedIndex::Build(s, options);
  if (!index.ok()) {
    std::fprintf(stderr, "sharded build failed: %s\n",
                 index.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(index).value();
}

// `total` requests from a pool of `distinct` mixed-length patterns (2..8),
// strided so repeats are spread out (same shape as bench_serving).
std::vector<Request> Workload(const UncertainString& s, size_t total,
                              size_t distinct, uint64_t seed) {
  std::vector<std::string> pool;
  pool.reserve(distinct);
  const size_t per_length = (distinct + 6) / 7;
  for (size_t len = 2; len <= 8 && pool.size() < distinct; ++len) {
    const auto sampled = SamplePatterns(s, per_length, len, seed + len);
    for (const auto& p : sampled) {
      if (pool.size() == distinct) break;
      pool.push_back(p);
    }
  }
  std::vector<Request> requests;
  requests.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    requests.push_back({pool[(i * 13 + 7) % pool.size()], kTau});
  }
  return requests;
}

ServingOptions EngineOptions() {
  ServingOptions options;
  options.max_batch = 64;
  options.linger_us = 200;
  options.num_workers = kWorkers;
  options.cache_bytes = size_t{16} << 20;
  return options;
}

double Percentile(std::vector<double>* sorted, double p) {
  std::sort(sorted->begin(), sorted->end());
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(sorted->size() - 1));
  return (*sorted)[idx];
}

// ---- Panel (a): closed-loop loopback overhead ----

// Per-request latencies for `clients` closed-loop submitters against a
// fresh in-process engine.
std::vector<double> InProcLatencies(const UncertainString& s,
                                    const std::vector<Request>& requests,
                                    size_t clients) {
  ServingEngine engine(BuildSharded(s), EngineOptions());
  std::vector<double> lat(requests.size());
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t i = c; i < requests.size(); i += clients) {
        const auto start = Clock::now();
        (void)engine.Submit(requests[i]).get();
        lat[i] =
            std::chrono::duration<double, std::micro>(Clock::now() - start)
                .count();
      }
    });
  }
  for (auto& t : threads) t.join();
  return lat;
}

// Same closed loop through a loopback NetServer, one connection per client.
std::vector<double> NetLatencies(const UncertainString& s,
                                 const std::vector<Request>& requests,
                                 size_t clients) {
  ServingEngine engine(BuildSharded(s), EngineOptions());
  net::NetServer server(&engine);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "listen failed\n");
    std::exit(1);
  }
  std::vector<double> lat(requests.size());
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::NetClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        std::fprintf(stderr, "connect failed\n");
        std::exit(1);
      }
      std::vector<Match> matches;
      for (size_t i = c; i < requests.size(); i += clients) {
        const auto start = Clock::now();
        (void)client.Query(requests[i], &matches);
        lat[i] =
            std::chrono::duration<double, std::micro>(Clock::now() - start)
                .count();
      }
    });
  }
  for (auto& t : threads) t.join();
  server.Stop();
  engine.Stop();
  return lat;
}

void PanelA(bool full) {
  const int64_t n = full ? 200000 : 30000;
  const UncertainString s = MakeInput(n);
  const auto requests = Workload(s, kRequests, kRequests / 8, 8000);

  bench::Table table("clients");
  table.SetColumns({"inproc p50", "net p50", "net p99"});
  for (const size_t clients : {size_t{1}, size_t{4}, size_t{8}}) {
    auto inproc = InProcLatencies(s, requests, clients);
    auto net = NetLatencies(s, requests, clients);
    table.AddRow("c=" + std::to_string(clients),
                 {Percentile(&inproc, 0.5), Percentile(&net, 0.5),
                  Percentile(&net, 0.99)});
  }
  table.Print("Serving/net (a): closed-loop request latency, in-process vs "
              "loopback TCP (2048 requests)",
              "us/request");
}

// ---- Panel (b): open-loop admission under offered overload ----

struct OpenLoopResult {
  size_t ok = 0;
  size_t shed = 0;
  size_t other = 0;
  double ok_p99_us = 0.0;
  double goodput_per_s = 0.0;  // completed requests / wall seconds
};

// Offers `requests` at a fixed arrival rate through one pipelined
// connection; a receiver thread drains responses (FIFO, ids echo send
// order) and times each completed request from its actual send instant.
OpenLoopResult OpenLoopRun(const net::NetServer& server,
                           const std::vector<Request>& requests,
                           double rate_per_s) {
  net::NetClient client;
  if (!client.Connect("127.0.0.1", server.port()).ok()) {
    std::fprintf(stderr, "connect failed\n");
    std::exit(1);
  }
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / rate_per_s));
  std::vector<Clock::time_point> sent(requests.size());

  OpenLoopResult result;
  std::vector<double> ok_lat;
  ok_lat.reserve(requests.size());
  const auto t0 = Clock::now();
  std::thread receiver([&] {
    for (size_t i = 0; i < requests.size(); ++i) {
      net::Frame frame;
      if (!client.Receive(&frame).ok()) {
        result.other += requests.size() - i;
        return;
      }
      const auto now = Clock::now();
      if (frame.code == Status::Code::kOk) {
        ++result.ok;
        ok_lat.push_back(
            std::chrono::duration<double, std::micro>(now - sent[i]).count());
      } else if (frame.code == Status::Code::kUnavailable) {
        ++result.shed;  // load shed: the admission contract, not a failure
      } else {
        ++result.other;
      }
    }
  });
  for (size_t i = 0; i < requests.size(); ++i) {
    std::this_thread::sleep_until(t0 + interval * static_cast<int64_t>(i));
    sent[i] = Clock::now();
    uint64_t id = 0;
    if (!client.SendQuery(requests[i], &id).ok()) break;
  }
  receiver.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  result.goodput_per_s = static_cast<double>(result.ok) / elapsed_s;
  if (!ok_lat.empty()) result.ok_p99_us = Percentile(&ok_lat, 0.99);
  client.Close();
  return result;
}

void PanelB(bool full) {
  const int64_t n = full ? 200000 : 30000;
  const UncertainString s = MakeInput(n);
  // Cold-cache admission: every accepted request costs real index work, so
  // "capacity" means worker throughput, not cache-hit rate.
  const auto requests = Workload(s, kRequests, kRequests, 9000);
  ServingOptions options = EngineOptions();
  options.cache_bytes = 0;
  options.linger_us = 100;
  options.max_pending = 256;  // bounds both queueing delay and memory

  ServingEngine engine(BuildSharded(s), options);
  net::NetServer server(&engine);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "listen failed\n");
    std::exit(1);
  }

  // Sustainable rate: flood the connection with no pacing. Requests beyond
  // the lane shed instantly, so the completed-per-second rate of the flood
  // is the workers' true drain throughput — a closed-loop probe would be
  // latency-bound and underestimate it badly.
  const double capacity_per_s =
      OpenLoopRun(server, requests, 1e7).goodput_per_s;

  bench::Table table("offered");
  table.SetColumns({"shed pct", "ok p99", "goodput r"});
  double goodput_1x = 0.0;
  for (const double mult : {1.0, 2.0}) {
    const OpenLoopResult r =
        OpenLoopRun(server, requests, capacity_per_s * mult);
    if (mult == 1.0) goodput_1x = r.goodput_per_s;
    const double total = static_cast<double>(r.ok + r.shed + r.other);
    table.AddRow("rate=" + std::string(mult == 1.0 ? "1.0" : "2.0"),
                 {100.0 * static_cast<double>(r.shed) / total, r.ok_p99_us,
                  goodput_1x > 0.0 ? r.goodput_per_s / goodput_1x : 0.0});
    if (r.other != 0) {
      std::fprintf(stderr, "warning: %zu request(s) neither completed nor "
                   "shed at %.1fx\n", r.other, mult);
    }
  }
  server.Stop();
  engine.Stop();
  // The lane must drain to empty once arrivals stop: shedding bounded the
  // queue instead of letting it grow with the overload.
  const auto stats = engine.stats();
  if (stats.queue_depth != 0) {
    std::fprintf(stderr, "warning: queue_depth %llu after drain\n",
                 static_cast<unsigned long long>(stats.queue_depth));
  }
  table.Print("Serving/net (b): open-loop admission at 1x and 2x measured "
              "capacity (2048 requests, bounded lane 256)",
              "shed pct; p99 us; goodput ratio vs the 1.0 run");
}

}  // namespace

void RunServingNet(const bench::Args& args) {
  std::printf("=== bench_serving_net (%s scale) ===\n",
              args.full ? "paper" : "default");
  if (bench::RunPanel(args, "a")) PanelA(args.full);
  if (bench::RunPanel(args, "b")) PanelB(args.full);
}

}  // namespace pti

int main(int argc, char** argv) {
  pti::RunServingNet(pti::bench::ParseArgs(argc, argv));
  return 0;
}
