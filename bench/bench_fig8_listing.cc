// Figure 8 (§8.2-§8.5): string-listing query time over a collection of
// uncertain strings (pieces with lengths ~ normal in [20, 45], §8.1).
//
//   (a) vs total collection size n, theta series
//   (b) vs query threshold tau, theta series
//   (c) vs construction tau_min, theta series
//   (d) vs pattern length m, theta series
//
// Times are microseconds per query; see EXPERIMENTS.md for the shape
// comparison against the paper's plots.

#include <vector>

#include "bench_util.h"
#include "core/listing_index.h"
#include "datagen/datagen.h"

namespace pti {
namespace {

constexpr double kThetas[] = {0.1, 0.2, 0.3, 0.4};

struct Built {
  std::vector<UncertainString> docs;
  ListingIndex index;
};

Built BuildListing(int64_t n, double theta, double tau_min, uint64_t seed) {
  DatasetOptions data;
  data.length = n;
  data.theta = theta;
  data.seed = seed;
  std::vector<UncertainString> docs = GenerateCollection(data);
  ListingOptions options;
  options.transform.tau_min = tau_min;
  auto index = ListingIndex::Build(docs, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    std::exit(1);
  }
  return Built{std::move(docs), std::move(index).value()};
}

// Mixed workload; document pieces are 20-45 positions, so the paper's
// longest query lengths cannot occur inside a piece — lengths {5,10,20,40}
// exercise the same short/long split relative to K.
std::vector<std::string> MixedWorkload(const std::vector<UncertainString>& docs,
                                       size_t per_length, uint64_t seed) {
  std::vector<std::string> patterns;
  for (const size_t m : {size_t{5}, size_t{10}, size_t{20}, size_t{40}}) {
    const auto batch = SampleCollectionPatterns(docs, per_length, m, seed + m);
    patterns.insert(patterns.end(), batch.begin(), batch.end());
  }
  return patterns;
}

double AvgQueryUs(const ListingIndex& index,
                  const std::vector<std::string>& patterns, double tau) {
  std::vector<DocMatch> out;
  // Warm-up pass: touch the index structures outside the timed region.
  for (const auto& p : patterns) (void)index.Query(p, tau, &out);
  const double ms = bench::TimeMs([&] {
    for (const auto& p : patterns) {
      (void)index.Query(p, tau, &out);
    }
  });
  return ms * 1000.0 / static_cast<double>(patterns.size());
}

void PanelA(bool full) {
  std::vector<int64_t> sizes = {25000, 50000, 100000};
  if (full) sizes = {25000, 50000, 100000, 200000, 300000};
  bench::Table table("n");
  std::vector<std::string> cols;
  for (const double theta : kThetas) {
    cols.push_back("theta=" + bench::FmtDouble(theta));
  }
  table.SetColumns(cols);
  for (const int64_t n : sizes) {
    std::vector<double> row;
    for (const double theta : kThetas) {
      const Built b = BuildListing(n, theta, 0.1, 7);
      const auto patterns = MixedWorkload(b.docs, 50, 1000);
      row.push_back(AvgQueryUs(b.index, patterns, 0.2));
    }
    table.AddRow(bench::FmtInt(n), row);
  }
  table.Print("Figure 8(a): listing query time vs collection size",
              "us/query");
}

void PanelB(bool full) {
  // As in Figure 7(b): the 4-letter alphabet variant makes the tau effect
  // (output-size dependence) visible at microsecond query costs.
  const int64_t n = full ? 200000 : 50000;
  bench::Table table("tau");
  std::vector<std::string> cols;
  std::vector<Built> built;
  std::vector<std::vector<std::string>> workloads;
  for (const double theta : kThetas) {
    cols.push_back("theta=" + bench::FmtDouble(theta));
    DatasetOptions data;
    data.length = n;
    data.theta = theta;
    data.alphabet = 4;
    data.seed = 11;
    std::vector<UncertainString> docs = GenerateCollection(data);
    ListingOptions options;
    options.transform.tau_min = 0.1;
    auto index = ListingIndex::Build(docs, options);
    if (!index.ok()) std::exit(1);
    built.push_back(Built{std::move(docs), std::move(index).value()});
    workloads.push_back(
        SampleCollectionPatterns(built.back().docs, 200, 6, 2000));
  }
  table.SetColumns(cols);
  for (const double tau : {0.10, 0.11, 0.12, 0.13, 0.14, 0.15}) {
    std::vector<double> row;
    for (size_t t = 0; t < built.size(); ++t) {
      row.push_back(AvgQueryUs(built[t].index, workloads[t], tau));
    }
    table.AddRow(bench::FmtDouble(tau), row);
  }
  table.Print("Figure 8(b): listing query time vs tau "
              "(4-letter alphabet variant)", "us/query");
}

void PanelC(bool full) {
  const int64_t n = full ? 100000 : 25000;
  bench::Table table("tau_min");
  std::vector<std::string> cols;
  for (const double theta : kThetas) {
    cols.push_back("theta=" + bench::FmtDouble(theta));
  }
  table.SetColumns(cols);
  for (const double tau_min : {0.04, 0.08, 0.12, 0.16, 0.20}) {
    std::vector<double> row;
    for (const double theta : kThetas) {
      const Built b = BuildListing(n, theta, tau_min, 13);
      const auto patterns = MixedWorkload(b.docs, 50, 3000);
      row.push_back(AvgQueryUs(b.index, patterns, 0.2));
    }
    table.AddRow(bench::FmtDouble(tau_min), row);
  }
  table.Print("Figure 8(c): listing query time vs tau_min (tau=0.2)",
              "us/query");
}

void PanelD(bool full) {
  const int64_t n = full ? 200000 : 50000;
  bench::Table table("m");
  std::vector<std::string> cols;
  std::vector<Built> built;
  for (const double theta : kThetas) {
    cols.push_back("theta=" + bench::FmtDouble(theta));
    built.push_back(BuildListing(n, theta, 0.1, 17));
  }
  table.SetColumns(cols);
  for (const size_t m : {5, 10, 15, 20, 25}) {
    std::vector<double> row;
    for (auto& b : built) {
      const auto patterns = SampleCollectionPatterns(b.docs, 200, m, 4000 + m);
      row.push_back(patterns.empty()
                        ? 0.0
                        : AvgQueryUs(b.index, patterns, 0.12));
    }
    table.AddRow(std::to_string(m), row);
  }
  table.Print("Figure 8(d): listing query time vs pattern length m",
              "us/query");
}

}  // namespace

void RunFig8(const bench::Args& args) {
  std::printf("=== bench_fig8_listing (%s scale) ===\n",
              args.full ? "paper" : "default");
  if (bench::RunPanel(args, "a")) PanelA(args.full);
  if (bench::RunPanel(args, "b")) PanelB(args.full);
  if (bench::RunPanel(args, "c")) PanelC(args.full);
  if (bench::RunPanel(args, "d")) PanelD(args.full);
}

}  // namespace pti

int main(int argc, char** argv) {
  pti::RunFig8(pti::bench::ParseArgs(argc, argv));
  return 0;
}
