// Serving-engine benchmarks (not a paper figure): what the async front end
// buys over calling the index synchronously, on serving-shaped traffic
// (a bounded pool of hot patterns cycled with repetition).
//
//   (a) throughput: per-query synchronous loop vs synchronous QueryBatch vs
//       the ServingEngine under 8 concurrent submitters, at increasing
//       pattern reuse. Reuse is where the engine wins: repeats are answered
//       by the (pattern, tau) cache or merged into one in-flight execution
//       instead of re-walking the index.
//   (b) request latency p50/p99 in a closed loop (8 clients, one request in
//       flight each). linger=0 shows the raw dispatch path; linger=200us
//       shows the coalescing window's cost on misses — hits bypass the
//       queue entirely, so p50 stays flat while p99 absorbs the linger.
//   (c) cache-hit sweep (single submitter): distinct-pattern count D from
//       hot (D=16) to cold (D=1024) over 2048 requests. "execs" is the
//       engine's unique executions (exactly D when the cache carries all
//       repeats), "reuse pct" the deduplicated fraction of submits.
//
// The engine always runs 2 drain workers so numbers are comparable across
// machines; timing is machine-relative (scripts/check_bench.py tolerances).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/substring_index.h"
#include "datagen/datagen.h"
#include "engine/serving_engine.h"
#include "engine/sharded_index.h"

namespace pti {
namespace {

constexpr double kTheta = 0.2;
constexpr double kTauMin = 0.1;
constexpr double kTau = 0.1;
constexpr int32_t kOverlap = 32;
constexpr size_t kRequests = 2048;
constexpr int32_t kWorkers = 2;
constexpr size_t kClients = 8;

UncertainString MakeInput(int64_t n) {
  DatasetOptions data;
  data.length = n;
  data.theta = kTheta;
  data.seed = 71;
  return GenerateUncertainString(data);
}

ShardedIndex BuildSharded(const UncertainString& s) {
  ShardedIndexOptions options;
  options.index.transform.tau_min = kTauMin;
  options.num_shards = 4;
  options.overlap = kOverlap;
  options.num_threads = kWorkers;
  auto index = ShardedIndex::Build(s, options);
  if (!index.ok()) {
    std::fprintf(stderr, "sharded build failed: %s\n",
                 index.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(index).value();
}

// `total` requests drawn from a pool of `distinct` patterns of mixed length
// (2..8, evenly represented), interleaved by a fixed stride so repeats are
// spread out rather than adjacent. Short patterns have large occurrence
// lists — the expensive hot queries a serving cache exists to amortize.
std::vector<BatchQuery> Workload(const UncertainString& s, size_t total,
                                 size_t distinct, uint64_t seed) {
  std::vector<std::string> pool;
  pool.reserve(distinct);
  const size_t per_length = (distinct + 6) / 7;
  for (size_t len = 2; len <= 8 && pool.size() < distinct; ++len) {
    const auto sampled = SamplePatterns(s, per_length, len, seed + len);
    for (const auto& p : sampled) {
      if (pool.size() == distinct) break;
      pool.push_back(p);
    }
  }
  std::vector<BatchQuery> queries;
  queries.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    queries.push_back({pool[(i * 13 + 7) % pool.size()], kTau});
  }
  return queries;
}

ServingOptions EngineOptions(int64_t linger_us = 200) {
  ServingOptions options;
  options.max_batch = 64;
  options.linger_us = linger_us;
  options.num_workers = kWorkers;
  options.cache_bytes = size_t{16} << 20;
  return options;
}

/// Time to answer the whole workload through a fresh engine with `clients`
/// concurrent submitters (cold cache at the start, as a serving process
/// would warm it).
double EngineMs(const UncertainString& s,
                const std::vector<BatchQuery>& queries, size_t clients,
                const ServingOptions& options) {
  ServingEngine engine(BuildSharded(s), options);
  std::vector<std::future<ServingEngine::Result>> futures(queries.size());
  return bench::TimeMs([&] {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (size_t i = c; i < queries.size(); i += clients) {
          futures[i] = engine.Submit({queries[i].pattern, queries[i].tau});
        }
      });
    }
    for (auto& t : threads) t.join();
    for (auto& f : futures) (void)f.get();
  });
}

void PanelA(bool full) {
  const int64_t n = full ? 200000 : 30000;
  const UncertainString s = MakeInput(n);
  const ShardedIndex index = BuildSharded(s);

  bench::Table table("reuse");
  table.SetColumns({"loop", "batch", "engine", "speedup"});
  for (const size_t distinct : {kRequests, kRequests / 8, kRequests / 32}) {
    const auto queries = Workload(s, kRequests, distinct, 5000 + distinct);
    std::vector<Match> out;
    std::vector<std::vector<Match>> batch_out;
    for (const auto& q : queries) (void)index.Query(q.pattern, q.tau, &out);
    (void)index.QueryBatch(queries, &batch_out);
    double loop_ms = 1e300, batch_ms = 1e300, engine_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      loop_ms = std::min(loop_ms, bench::TimeMs([&] {
        for (const auto& q : queries) {
          (void)index.Query(q.pattern, q.tau, &out);
        }
      }));
      batch_ms = std::min(batch_ms, bench::TimeMs([&] {
        (void)index.QueryBatch(queries, &batch_out);
      }));
      engine_ms =
          std::min(engine_ms, EngineMs(s, queries, kClients, EngineOptions()));
    }
    const double per = static_cast<double>(queries.size());
    table.AddRow(std::to_string(kRequests / distinct) + "x",
                 {loop_ms * 1000.0 / per, batch_ms * 1000.0 / per,
                  engine_ms * 1000.0 / per, loop_ms / engine_ms});
  }
  table.Print("Serving (a): throughput, sync loop vs batch vs async engine "
              "(2048 requests, 8 clients)",
              "us/query; speedup is a ratio");
}

double Percentile(std::vector<double>* sorted, double p) {
  std::sort(sorted->begin(), sorted->end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(
      sorted->size() - 1));
  return (*sorted)[idx];
}

void PanelB(bool full) {
  const int64_t n = full ? 200000 : 30000;
  const UncertainString s = MakeInput(n);
  const auto queries = Workload(s, kRequests, kRequests / 32, 6000);

  bench::Table table("config");
  table.SetColumns({"p50", "p99"});

  {
    const ShardedIndex index = BuildSharded(s);
    std::vector<Match> out;
    for (const auto& q : queries) (void)index.Query(q.pattern, q.tau, &out);
    std::vector<double> lat;
    lat.reserve(queries.size());
    for (const auto& q : queries) {
      const auto start = std::chrono::steady_clock::now();
      (void)index.Query(q.pattern, q.tau, &out);
      lat.push_back(std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count());
    }
    table.AddRow("sync", {Percentile(&lat, 0.5), Percentile(&lat, 0.99)});
  }

  for (const int64_t linger_us : {int64_t{0}, int64_t{200}}) {
    ServingEngine engine(BuildSharded(s), EngineOptions(linger_us));
    std::vector<double> lat(queries.size());
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        for (size_t i = c; i < queries.size(); i += kClients) {
          const auto start = std::chrono::steady_clock::now();
          (void)engine.Submit({queries[i].pattern, queries[i].tau}).get();
          lat[i] = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start)
                       .count();
        }
      });
    }
    for (auto& t : threads) t.join();
    table.AddRow("eng l=" + std::to_string(linger_us),
                 {Percentile(&lat, 0.5), Percentile(&lat, 0.99)});
  }
  table.Print("Serving (b): closed-loop request latency, 8 clients "
              "(64 hot patterns)",
              "us");
}

void PanelC(bool full) {
  const int64_t n = full ? 200000 : 30000;
  const UncertainString s = MakeInput(n);
  const ShardedIndex index = BuildSharded(s);

  bench::Table table("distinct");
  table.SetColumns({"execs", "reuse pct", "engine", "loop"});
  for (const size_t distinct : {size_t{16}, size_t{64}, size_t{256},
                                size_t{1024}}) {
    const auto queries = Workload(s, kRequests, distinct, 7000 + distinct);
    std::vector<Match> out;
    for (const auto& q : queries) (void)index.Query(q.pattern, q.tau, &out);
    const double loop_ms = bench::TimeMs([&] {
      for (const auto& q : queries) {
        (void)index.Query(q.pattern, q.tau, &out);
      }
    });

    double engine_ms = 1e300;
    uint64_t execs = 0, reused = 0;
    for (int rep = 0; rep < 3; ++rep) {
      ServingEngine engine(BuildSharded(s), EngineOptions());
      std::vector<std::future<ServingEngine::Result>> futures(queries.size());
      engine_ms = std::min(engine_ms, bench::TimeMs([&] {
        for (size_t i = 0; i < queries.size(); ++i) {
          futures[i] = engine.Submit({queries[i].pattern, queries[i].tau});
        }
        for (auto& f : futures) (void)f.get();
      }));
      const auto stats = engine.stats();
      execs = stats.batched_queries + stats.fallback_queries;
      reused = stats.cache_hits + stats.inflight_merges;
    }
    const double per = static_cast<double>(queries.size());
    table.AddRow("D=" + std::to_string(distinct),
                 {static_cast<double>(execs),
                  100.0 * static_cast<double>(reused) / per,
                  engine_ms * 1000.0 / per, loop_ms * 1000.0 / per});
  }
  table.Print("Serving (c): cache-hit sweep, single submitter "
              "(2048 requests)",
              "execs; reuse pct; us/query");
}

}  // namespace

void RunServing(const bench::Args& args) {
  std::printf("=== bench_serving (%s scale) ===\n",
              args.full ? "paper" : "default");
  if (bench::RunPanel(args, "a")) PanelA(args.full);
  if (bench::RunPanel(args, "b")) PanelB(args.full);
  if (bench::RunPanel(args, "c")) PanelC(args.full);
}

}  // namespace pti

int main(int argc, char** argv) {
  pti::RunServing(pti::bench::ParseArgs(argc, argv));
  return 0;
}
