// Sharded engine benchmarks (not a paper figure): what the engine layer
// buys — and costs — relative to one monolithic SubstringIndex.
//
//   (a) construction: monolithic vs K shards at 1/2/4 build threads.
//       Shard slices shrink the per-shard suffix structures (SA-IS, LCP,
//       tree, RMQ forest are superlinear-constant-heavy), and independent
//       shards parallelize; the overlap is the price.
//   (b) single-query latency: fan-out across K shards vs one locus walk.
//       Sharding pays K locus lookups per query — this panel keeps that
//       honest.
//   (c) batch throughput on the sharded index: one-at-a-time loop vs
//       QueryBatch (shard-parallel fan-out + per-shard prefix sharing).
//
// Thread counts above the machine's core count cannot help; the table
// reports whatever the hardware gives.

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "core/substring_index.h"
#include "datagen/datagen.h"
#include "engine/sharded_index.h"

namespace pti {
namespace {

constexpr double kTheta = 0.2;
constexpr double kTauMin = 0.1;
constexpr int32_t kOverlap = 32;

UncertainString MakeInput(int64_t n) {
  DatasetOptions data;
  data.length = n;
  data.theta = kTheta;
  data.seed = 71;
  return GenerateUncertainString(data);
}

ShardedIndex BuildSharded(const UncertainString& s, int32_t shards,
                          int32_t threads) {
  ShardedIndexOptions options;
  options.index.transform.tau_min = kTauMin;
  options.num_shards = shards;
  options.overlap = kOverlap;
  options.num_threads = threads;
  auto index = ShardedIndex::Build(s, options);
  if (!index.ok()) {
    std::fprintf(stderr, "sharded build failed: %s\n",
                 index.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(index).value();
}

void PanelA(bool full) {
  const int64_t n = full ? 200000 : 30000;
  const UncertainString s = MakeInput(n);
  bench::Table table("config");
  table.SetColumns({"build ms"});
  {
    IndexOptions options;
    options.transform.tau_min = kTauMin;
    const double ms = bench::TimeMs([&] {
      const auto index = SubstringIndex::Build(s, options);
      if (!index.ok()) std::exit(1);
    });
    table.AddRow("monolithic", {ms});
  }
  for (const int32_t shards : {2, 4, 8}) {
    for (const int32_t threads : {1, 2, 4}) {
      const double ms =
          bench::TimeMs([&] { (void)BuildSharded(s, shards, threads); });
      table.AddRow("K=" + std::to_string(shards) + " t=" +
                       std::to_string(threads),
                   {ms});
    }
  }
  table.Print("Sharding (a): construction time, monolithic vs sharded", "ms");
}

void PanelB(bool full) {
  const int64_t n = full ? 200000 : 30000;
  const UncertainString s = MakeInput(n);
  IndexOptions mono_options;
  mono_options.transform.tau_min = kTauMin;
  const auto mono = SubstringIndex::Build(s, mono_options);
  if (!mono.ok()) std::exit(1);

  bench::Table table("m");
  table.SetColumns({"monolithic", "K=2", "K=4", "K=8"});
  for (const size_t m : {4, 8, 16, 32}) {
    const auto patterns = SamplePatterns(s, 200, m, 5000 + m);
    std::vector<double> row;
    std::vector<Match> out;
    for (const auto& p : patterns) (void)mono->Query(p, 0.2, &out);
    const double mono_ms = bench::TimeMs([&] {
      for (const auto& p : patterns) (void)mono->Query(p, 0.2, &out);
    });
    row.push_back(mono_ms * 1000.0 / static_cast<double>(patterns.size()));
    for (const int32_t shards : {2, 4, 8}) {
      const ShardedIndex index = BuildSharded(s, shards, 0);
      for (const auto& p : patterns) (void)index.Query(p, 0.2, &out);
      const double ms = bench::TimeMs([&] {
        for (const auto& p : patterns) (void)index.Query(p, 0.2, &out);
      });
      row.push_back(ms * 1000.0 / static_cast<double>(patterns.size()));
    }
    table.AddRow(std::to_string(m), row);
  }
  table.Print("Sharding (b): single-query latency, fan-out cost", "us/query");
}

void PanelC(bool full) {
  const int64_t n = full ? 200000 : 30000;
  constexpr size_t kBatch = 512;
  const UncertainString s = MakeInput(n);
  const auto patterns = SampleSharedPrefixPatterns(s, kBatch, 8, 12, 7000);
  std::vector<BatchQuery> queries;
  queries.reserve(patterns.size());
  for (const auto& p : patterns) queries.push_back({p, 0.2});

  bench::Table table("config");
  table.SetColumns({"loop", "batch", "speedup"});
  for (const int32_t threads : {1, 2, 4}) {
    const ShardedIndex index = BuildSharded(s, 4, threads);
    std::vector<Match> out;
    std::vector<std::vector<Match>> batch_out;
    (void)index.QueryBatch(queries, &batch_out);
    for (const auto& q : queries) (void)index.Query(q.pattern, q.tau, &out);
    double loop_ms = 1e300, batch_ms = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      loop_ms = std::min(loop_ms, bench::TimeMs([&] {
        for (const auto& q : queries) {
          (void)index.Query(q.pattern, q.tau, &out);
        }
      }));
      batch_ms = std::min(batch_ms, bench::TimeMs([&] {
        (void)index.QueryBatch(queries, &batch_out);
      }));
    }
    const double per = static_cast<double>(queries.size());
    table.AddRow("K=4 t=" + std::to_string(threads),
                 {loop_ms * 1000.0 / per, batch_ms * 1000.0 / per,
                  loop_ms / batch_ms});
  }
  table.Print("Sharding (c): batch throughput on the sharded index "
              "(512 shared-prefix patterns)",
              "us/query; speedup is a ratio");
}

}  // namespace

void RunSharding(const bench::Args& args) {
  std::printf("=== bench_sharding (%s scale) ===\n",
              args.full ? "paper" : "default");
  if (bench::RunPanel(args, "a")) PanelA(args.full);
  if (bench::RunPanel(args, "b")) PanelB(args.full);
  if (bench::RunPanel(args, "c")) PanelC(args.full);
}

}  // namespace pti

int main(int argc, char** argv) {
  pti::RunSharding(pti::bench::ParseArgs(argc, argv));
  return 0;
}
