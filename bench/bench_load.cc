// Index loading paths: v2 interchange decode vs v3 aligned container, with
// the v3 file consumed both by copy (ReadFileToBlob) and zero-copy mmap
// (MapFile). Two panels:
//
//   a) file load — time from on-disk container to a queryable compact
//      SubstringIndex for each path, plus the two container sizes. The v3
//      mmap column is the serving-restart number the zero-copy work
//      targets: section payloads are handed out as pointers into the
//      mapping instead of decoded copies.
//   b) hot reload — ServingEngine::Reload(path) latency under the same
//      mmap/copy split: load + validate the new generation, flip the
//      generation pointer, drop the stale result cache. The engine keeps
//      serving throughout, so this is swap latency, not downtime.
//
// Query cost after load is identical across the three paths (the mmap
// round-trip equivalence tests assert bit-identical results), so no panel
// re-measures it; bench_ablation_compact covers query timing.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_util.h"
#include "core/serde.h"
#include "core/substring_index.h"
#include "datagen/datagen.h"
#include "engine/serving_engine.h"

namespace pti {
namespace {

std::vector<int64_t> Sizes(const bench::Args& args) {
  std::vector<int64_t> sizes = {25000, 50000, 100000};
  if (args.full) sizes.push_back(200000);
  return sizes;
}

UncertainString MakeString(int64_t n) {
  DatasetOptions data;
  data.length = n;
  data.theta = 0.3;
  data.seed = 99;
  return GenerateUncertainString(data);
}

IndexOptions CompactOptions() {
  IndexOptions options;
  options.transform.tau_min = 0.1;
  options.compact = true;
  return options;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("pti_bench_load_" + name))
      .string();
}

void WriteWhole(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) std::exit(1);
}

// Build once per n, persist both container versions, and time the three
// load paths. Each load is timed including the file read/map: that is the
// quantity a restarting server pays.
void RunFileLoad(const bench::Args& args) {
  bench::Table table("n");
  table.SetColumns({"v2 ms", "v3 copy ms", "v3 mmap ms", "v2 MiB",
                    "v3 MiB"});
  for (const int64_t n : Sizes(args)) {
    const UncertainString s = MakeString(n);
    const auto built = SubstringIndex::Build(s, CompactOptions());
    if (!built.ok()) std::exit(1);
    std::string v2_blob, v3_blob;
    if (!built->Save(&v2_blob, serde::kInterchangeVersion).ok() ||
        !built->Save(&v3_blob, serde::kContainerVersion).ok()) {
      std::exit(1);
    }
    const std::string v2_path = TempPath("v2.pti");
    const std::string v3_path = TempPath("v3.pti");
    WriteWhole(v2_path, v2_blob);
    WriteWhole(v3_path, v3_blob);

    StatusOr<SubstringIndex> loaded = SubstringIndex();
    const double v2_ms = bench::TimeMs([&] {
      auto blob = serde::ReadFileToBlob(v2_path);
      if (!blob.ok()) std::exit(1);
      loaded = SubstringIndex::Load((*blob)->view(), *blob);
    });
    if (!loaded.ok()) std::exit(1);
    const double v3_copy_ms = bench::TimeMs([&] {
      auto blob = serde::ReadFileToBlob(v3_path);
      if (!blob.ok()) std::exit(1);
      loaded = SubstringIndex::Load((*blob)->view(), *blob);
    });
    if (!loaded.ok()) std::exit(1);
    const double v3_mmap_ms = bench::TimeMs([&] {
      auto blob = serde::MapFile(v3_path);
      if (!blob.ok()) std::exit(1);
      loaded = SubstringIndex::Load((*blob)->view(), *blob);
    });
    if (!loaded.ok()) std::exit(1);
    table.AddRow(bench::FmtInt(n),
                 {v2_ms, v3_copy_ms, v3_mmap_ms,
                  v2_blob.size() / 1048576.0, v3_blob.size() / 1048576.0});
    std::filesystem::remove(v2_path);
    std::filesystem::remove(v3_path);
  }
  // Unit avoids "MB": the size columns are deterministic, but the load
  // times need check_bench.py's timing tolerance, not the memory band.
  table.Print("File load: v2 decode vs v3 copy vs v3 mmap (compact index)",
              "ms per load / container MiB");
}

// Swap latency: a live engine reloads its generation from disk. The mmap
// column is the restart-free deploy path; the copy column is the fallback
// for filesystems where mapping is undesirable.
void RunReload(const bench::Args& args) {
  bench::Table table("n");
  table.SetColumns({"mmap ms", "copy ms"});
  for (const int64_t n : Sizes(args)) {
    const UncertainString s = MakeString(n);
    const auto built = SubstringIndex::Build(s, CompactOptions());
    if (!built.ok()) std::exit(1);
    std::string blob;
    if (!built->Save(&blob).ok()) std::exit(1);
    const std::string path = TempPath("reload.pti");
    WriteWhole(path, blob);

    auto first = SubstringIndex::Build(s, CompactOptions());
    if (!first.ok()) std::exit(1);
    ServingOptions options;
    options.num_workers = 2;
    ServingEngine engine(std::move(*first), options);
    const double mmap_ms = bench::TimeMs([&] {
      if (!engine.Reload(path, /*use_mmap=*/true).ok()) std::exit(1);
    });
    const double copy_ms = bench::TimeMs([&] {
      if (!engine.Reload(path, /*use_mmap=*/false).ok()) std::exit(1);
    });
    table.AddRow(bench::FmtInt(n), {mmap_ms, copy_ms});
    std::filesystem::remove(path);
  }
  table.Print("Hot reload: ServingEngine::Reload(path) swap latency",
              "ms per reload");
}

}  // namespace

void RunLoadBench(const bench::Args& args) {
  std::printf("=== bench_load ===\n");
  if (bench::RunPanel(args, "a")) RunFileLoad(args);
  if (bench::RunPanel(args, "b")) RunReload(args);
}

}  // namespace pti

int main(int argc, char** argv) {
  pti::RunLoadBench(pti::bench::ParseArgs(argc, argv));
  return 0;
}
