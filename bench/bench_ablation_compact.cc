// Ablation: full (suffix tree) vs compact (FM-index) substring index.
//
// §8.7 of the paper reports space using a compressed suffix array in place
// of the suffix tree; IndexOptions::compact is our equivalent. Reported:
// build time, memory, and query time for both modes at increasing n —
// the space ratio is the number to watch.

#include <vector>

#include "bench_util.h"
#include "core/substring_index.h"
#include "datagen/datagen.h"

namespace pti {

void RunCompact(const bench::Args& args) {
  std::vector<int64_t> sizes = {25000, 50000, 100000};
  if (args.full) sizes.push_back(200000);
  std::printf("=== bench_ablation_compact ===\n");
  bench::Table table("n");
  table.SetColumns({"full MB", "compact MB", "ratio", "full us/q",
                    "compact us/q", "full build s", "compact build s"});
  for (const int64_t n : sizes) {
    DatasetOptions data;
    data.length = n;
    data.theta = 0.3;
    data.seed = 99;
    const UncertainString s = GenerateUncertainString(data);

    IndexOptions full_options;
    full_options.transform.tau_min = 0.1;
    IndexOptions compact_options = full_options;
    compact_options.compact = true;

    StatusOr<SubstringIndex> full = SubstringIndex(), compact =
                                                         SubstringIndex();
    const double full_build_ms = bench::TimeMs(
        [&] { full = SubstringIndex::Build(s, full_options); });
    const double compact_build_ms = bench::TimeMs(
        [&] { compact = SubstringIndex::Build(s, compact_options); });
    if (!full.ok() || !compact.ok()) std::exit(1);

    const auto patterns = SamplePatterns(s, 400, 8, 1234);
    std::vector<Match> out;
    const double full_q = bench::TimeMs([&] {
      for (const auto& p : patterns) (void)full->Query(p, 0.2, &out);
    });
    const double compact_q = bench::TimeMs([&] {
      for (const auto& p : patterns) (void)compact->Query(p, 0.2, &out);
    });
    const double full_mb = full->MemoryUsage() / 1048576.0;
    const double compact_mb = compact->MemoryUsage() / 1048576.0;
    table.AddRow(bench::FmtInt(n),
                 {full_mb, compact_mb, full_mb / compact_mb,
                  full_q * 1000 / patterns.size(),
                  compact_q * 1000 / patterns.size(), full_build_ms / 1000,
                  compact_build_ms / 1000});
  }
  table.Print("Full (suffix tree) vs compact (FM-index) index",
              "mixed units");
}

}  // namespace pti

int main(int argc, char** argv) {
  pti::RunCompact(pti::bench::ParseArgs(argc, argv));
  return 0;
}
