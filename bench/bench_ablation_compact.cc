// Ablation: full (suffix tree) vs compact (FM-index) substring index.
//
// §8.7 of the paper reports space using a compressed suffix array in place
// of the suffix tree; IndexOptions::compact is our equivalent. Four panels:
//
//   a) the headline table — build time, memory and query time for both
//      modes at increasing n (the space ratio is the number to watch);
//   b) locus-only — FM backward search vs suffix-tree walk on the bare
//      succinct structures, isolating the O(m log sigma) path the
//      rank-directory work targets;
//   c) batched queries — compact QueryBatch (suffix-resumed range
//      extension) vs the one-at-a-time query loop on a shared-suffix
//      workload;
//   d) load — Save/Load round-trip time for both modes; compact blobs
//      carry the suffix array (FORMAT.md "SARR"), so Load skips SA-IS and
//      never builds a tree.

#include <string>
#include <vector>

#include "bench_util.h"
#include "core/substring_index.h"
#include "datagen/datagen.h"
#include "succinct/fm_index.h"
#include "suffix/suffix_tree.h"
#include "suffix/text.h"
#include "util/rng.h"

namespace pti {
namespace {

std::vector<int64_t> Sizes(const bench::Args& args) {
  std::vector<int64_t> sizes = {25000, 50000, 100000};
  if (args.full) sizes.push_back(200000);
  return sizes;
}

UncertainString MakeString(int64_t n) {
  DatasetOptions data;
  data.length = n;
  data.theta = 0.3;
  data.seed = 99;
  return GenerateUncertainString(data);
}

IndexOptions FullOptions() {
  IndexOptions options;
  options.transform.tau_min = 0.1;
  return options;
}

IndexOptions CompactOptions() {
  IndexOptions options = FullOptions();
  options.compact = true;
  return options;
}

void RunHeadline(const bench::Args& args) {
  bench::Table table("n");
  table.SetColumns({"full MB", "compact MB", "ratio", "full us/q",
                    "compact us/q", "full build s", "compact build s"});
  for (const int64_t n : Sizes(args)) {
    const UncertainString s = MakeString(n);
    StatusOr<SubstringIndex> full = SubstringIndex(), compact =
                                                         SubstringIndex();
    const double full_build_ms = bench::TimeMs(
        [&] { full = SubstringIndex::Build(s, FullOptions()); });
    const double compact_build_ms = bench::TimeMs(
        [&] { compact = SubstringIndex::Build(s, CompactOptions()); });
    if (!full.ok() || !compact.ok()) std::exit(1);

    const auto patterns = SamplePatterns(s, 400, 8, 1234);
    std::vector<Match> out;
    const double full_q = bench::TimeMs([&] {
      for (const auto& p : patterns) (void)full->Query(p, 0.2, &out);
    });
    const double compact_q = bench::TimeMs([&] {
      for (const auto& p : patterns) (void)compact->Query(p, 0.2, &out);
    });
    const double full_mb = full->MemoryUsage() / 1048576.0;
    const double compact_mb = compact->MemoryUsage() / 1048576.0;
    table.AddRow(bench::FmtInt(n),
                 {full_mb, compact_mb, full_mb / compact_mb,
                  full_q * 1000 / patterns.size(),
                  compact_q * 1000 / patterns.size(), full_build_ms / 1000,
                  compact_build_ms / 1000});
  }
  table.Print("Full (suffix tree) vs compact (FM-index) index",
              "mixed units");
}

// Locus path in isolation: random byte text, identical patterns, tree walk
// vs backward search. No extraction, no factor machinery — just the
// structure the rank directory and fused wavelet-tree ranks accelerate.
void RunLocus(const bench::Args& args) {
  bench::Table table("n");
  table.SetColumns({"tree us/op", "fm us/op", "fm/tree"});
  for (const int64_t n : Sizes(args)) {
    Rng rng(321);
    std::string raw(static_cast<size_t>(n), 'a');
    for (auto& c : raw) c = static_cast<char>('a' + rng.Uniform(4));
    Text text;
    text.AppendMember(raw);
    const SuffixTree st =
        SuffixTree::Build(text.chars(), text.alphabet_size());
    const FmIndex fm(text.chars(), st.sa(), text.alphabet_size());

    std::vector<std::vector<int32_t>> patterns;
    for (int k = 0; k < 2000; ++k) {
      const size_t len = 4 + rng.Uniform(9);
      const size_t start = rng.Uniform(raw.size() - len);
      patterns.push_back(
          Text::MapPattern(raw.substr(start, len)));
    }
    // Accumulate range ends so the searches cannot be optimized away.
    int64_t sink = 0;
    const double tree_ms = bench::TimeMs([&] {
      for (const auto& p : patterns) {
        const auto r = st.FindRange(p);
        if (r.has_value()) sink += r->end;
      }
    });
    const double fm_ms = bench::TimeMs([&] {
      for (const auto& p : patterns) {
        const auto r = fm.Range(p);
        if (r.has_value()) sink += r->second;
      }
    });
    if (sink == -1) std::exit(1);
    table.AddRow(bench::FmtInt(n),
                 {tree_ms * 1000 / patterns.size(),
                  fm_ms * 1000 / patterns.size(),
                  fm_ms / tree_ms});
  }
  table.Print("Compact locus: FM backward search vs suffix-tree walk",
              "us/op");
}

// Batched compact queries on a shared-suffix workload: QueryBatch resumes
// backward search from the shared suffix; the loop re-runs it per pattern.
void RunBatch(const bench::Args& args) {
  bench::Table table("n");
  table.SetColumns({"loop us/q", "batch us/q", "speedup"});
  for (const int64_t n : Sizes(args)) {
    const UncertainString s = MakeString(n);
    const auto compact = SubstringIndex::Build(s, CompactOptions());
    if (!compact.ok()) std::exit(1);
    const auto patterns = SampleSharedSuffixPatterns(s, 512, 6, 8, 77);
    std::vector<BatchQuery> batch;
    batch.reserve(patterns.size());
    for (const auto& p : patterns) batch.push_back({p, 0.2});

    std::vector<Match> out;
    const double loop_ms = bench::TimeMs([&] {
      for (const auto& p : patterns) (void)compact->Query(p, 0.2, &out);
    });
    std::vector<std::vector<Match>> batch_out;
    const double batch_ms = bench::TimeMs(
        [&] { (void)compact->QueryBatch(batch, &batch_out); });
    table.AddRow(bench::FmtInt(n),
                 {loop_ms * 1000 / patterns.size(),
                  batch_ms * 1000 / patterns.size(), loop_ms / batch_ms});
  }
  table.Print("Compact batched queries: QueryBatch vs query loop",
              "us/query, speedup");
}

// Load cost for both modes. The compact blob's "SARR" section removes the
// SA-IS run (and compact never builds the tree), so compact Load should
// sit well below the full-mode rebuild.
void RunLoad(const bench::Args& args) {
  bench::Table table("n");
  table.SetColumns({"full load ms", "compact ms", "full MB", "compact MB"});
  for (const int64_t n : Sizes(args)) {
    const UncertainString s = MakeString(n);
    const auto full = SubstringIndex::Build(s, FullOptions());
    const auto compact = SubstringIndex::Build(s, CompactOptions());
    if (!full.ok() || !compact.ok()) std::exit(1);
    std::string full_blob, compact_blob;
    if (!full->Save(&full_blob).ok() || !compact->Save(&compact_blob).ok()) {
      std::exit(1);
    }
    StatusOr<SubstringIndex> loaded = SubstringIndex();
    const double full_ms =
        bench::TimeMs([&] { loaded = SubstringIndex::Load(full_blob); });
    if (!loaded.ok()) std::exit(1);
    const double compact_ms =
        bench::TimeMs([&] { loaded = SubstringIndex::Load(compact_blob); });
    if (!loaded.ok()) std::exit(1);
    table.AddRow(bench::FmtInt(n),
                 {full_ms, compact_ms, full_blob.size() / 1048576.0,
                  compact_blob.size() / 1048576.0});
  }
  // Unit string deliberately avoids "MB": check_bench.py classifies by
  // unit, and the load times here need timing tolerance, not the 5% memory
  // band (the blob-size columns are effectively deterministic anyway).
  table.Print("Compact load: persisted suffix array vs full rebuild",
              "ms per Load / blob MiB");
}

}  // namespace

void RunCompact(const bench::Args& args) {
  std::printf("=== bench_ablation_compact ===\n");
  if (bench::RunPanel(args, "a")) RunHeadline(args);
  if (bench::RunPanel(args, "b")) RunLocus(args);
  if (bench::RunPanel(args, "c")) RunBatch(args);
  if (bench::RunPanel(args, "d")) RunLoad(args);
}

}  // namespace pti

int main(int argc, char** argv) {
  pti::RunCompact(pti::bench::ParseArgs(argc, argv));
  return 0;
}
