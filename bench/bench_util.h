// Shared helpers for the figure-regeneration benches: flag parsing, timing,
// and fixed-width table printing in the paper's row/series layout.
//
// Every bench binary runs with laptop-scale defaults in well under a minute
// and accepts --full to reach the paper's 300K-position scale.

#ifndef PTI_BENCH_BENCH_UTIL_H_
#define PTI_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

namespace pti {
namespace bench {

struct Args {
  bool full = false;
  std::string panel;  // empty = all panels
};

inline Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      args.full = true;
    } else if (std::strncmp(argv[i], "--panel=", 8) == 0) {
      args.panel = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("flags: --full (paper-scale sizes), --panel=<letter>\n");
      std::exit(0);
    }
  }
  return args;
}

inline bool RunPanel(const Args& args, const char* panel) {
  return args.panel.empty() || args.panel == panel;
}

/// Wall-clock milliseconds for fn().
inline double TimeMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Prints a table: header row of column labels, then one row per series
/// entry. Matches the paper's "x-axis value vs theta series" figures.
class Table {
 public:
  explicit Table(const std::string& row_label) : row_label_(row_label) {}

  void SetColumns(const std::vector<std::string>& cols) { cols_ = cols; }

  void AddRow(const std::string& label, const std::vector<double>& values) {
    rows_.push_back({label, values});
  }

  void Print(const std::string& title, const std::string& unit) const {
    std::printf("\n%s  [%s]\n", title.c_str(), unit.c_str());
    std::printf("  %-12s", row_label_.c_str());
    for (const auto& c : cols_) std::printf(" %12s", c.c_str());
    std::printf("\n");
    for (const auto& [label, values] : rows_) {
      std::printf("  %-12s", label.c_str());
      for (const double v : values) std::printf(" %12.3f", v);
      std::printf("\n");
    }
  }

 private:
  struct Row {
    std::string label;
    std::vector<double> values;
  };
  std::string row_label_;
  std::vector<std::string> cols_;
  std::vector<Row> rows_;
};

inline std::string FmtInt(int64_t v) {
  if (v % 1000 == 0 && v >= 1000) return std::to_string(v / 1000) + "K";
  return std::to_string(v);
}

inline std::string FmtDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace bench
}  // namespace pti

#endif  // PTI_BENCH_BENCH_UTIL_H_
