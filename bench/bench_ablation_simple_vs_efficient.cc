// Ablation: §4.1 simple index vs §4.2 efficient (RMQ) index.
//
// The paper's core argument: scanning the whole suffix range costs
// O(range) even when almost nothing qualifies, while the RMQ walk pays
// O(1) per reported occurrence. We sweep the query threshold tau — higher
// tau means fewer qualifying occurrences out of the same suffix range — and
// report microseconds per query for both modes. The crossover (scan wins
// only when occ ~ range) is the figure to look at.

#include <vector>

#include "bench_util.h"
#include "core/special_index.h"
#include "util/rng.h"

namespace pti {
namespace {

// A special uncertain string over a tiny alphabet (big suffix ranges) with
// per-position probabilities spread over [0.5, 1), so tau controls
// selectivity smoothly.
UncertainString MakeSpecial(int64_t n, uint64_t seed) {
  Rng rng(seed);
  UncertainString s;
  for (int64_t i = 0; i < n; ++i) {
    s.AddPosition({{static_cast<uint8_t>('a' + rng.Uniform(2)),
                    0.5 + 0.5 * rng.UniformDouble()}});
  }
  return s;
}

std::vector<std::string> Workload(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> patterns;
  for (size_t i = 0; i < count; ++i) {
    std::string p;
    for (int k = 0; k < 4; ++k) {
      p.push_back(static_cast<char>('a' + rng.Uniform(2)));
    }
    patterns.push_back(p);
  }
  return patterns;
}

}  // namespace

void RunAblation(const bench::Args& args) {
  const int64_t n = args.full ? 1000000 : 200000;
  std::printf("=== bench_ablation_simple_vs_efficient (n = %lld) ===\n",
              static_cast<long long>(n));
  const UncertainString s = MakeSpecial(n, 3);

  SpecialIndexOptions simple;
  simple.use_rmq = false;
  SpecialIndexOptions efficient;
  efficient.scan_cutoff = 0;
  auto simple_index = SpecialIndex::Build(s, simple);
  auto efficient_index = SpecialIndex::Build(s, efficient);
  if (!simple_index.ok() || !efficient_index.ok()) {
    std::fprintf(stderr, "build failed\n");
    std::exit(1);
  }

  const auto patterns = Workload(200, 17);
  bench::Table table("tau");
  table.SetColumns({"simple(scan)", "efficient(RMQ)", "avg matches"});
  for (const double tau :
       {0.30, 0.50, 0.70, 0.85, 0.95, 0.99}) {
    std::vector<Match> out;
    size_t matches = 0;
    const double simple_ms = bench::TimeMs([&] {
      for (const auto& p : patterns) {
        (void)simple_index->Query(p, tau, &out);
        matches += out.size();
      }
    });
    const double efficient_ms = bench::TimeMs([&] {
      for (const auto& p : patterns) {
        (void)efficient_index->Query(p, tau, &out);
      }
    });
    table.AddRow(bench::FmtDouble(tau),
                 {simple_ms * 1000 / patterns.size(),
                  efficient_ms * 1000 / patterns.size(),
                  static_cast<double>(matches) / patterns.size()});
  }
  table.Print("Simple (4.1) vs efficient (4.2) query time as selectivity "
              "varies", "us/query");
}

}  // namespace pti

int main(int argc, char** argv) {
  pti::RunAblation(pti::bench::ParseArgs(argc, argv));
  return 0;
}
