// Ablation: long-pattern (m > K) strategies (DESIGN.md §2.3).
//
//   kPow2       — power-of-two upper-bound levels (bounded memory, default)
//   kPaperExact — the paper's per-length block structures, built lazily
//   kScanOnly   — validate every entry of the locus range
//
// Reported: microseconds per query per pattern length, plus each index's
// memory after the workload (kPaperExact grows per distinct length queried).

#include <vector>

#include "bench_util.h"
#include "core/substring_index.h"
#include "datagen/datagen.h"

namespace pti {
namespace {

SubstringIndex BuildWith(const UncertainString& s, BlockingMode mode) {
  IndexOptions options;
  options.transform.tau_min = 0.04;
  options.blocking = mode;
  options.max_short_depth = 8;  // widen the long-pattern regime
  options.scan_cutoff = 0;      // isolate the blocking strategies
  auto index = SubstringIndex::Build(s, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(index).value();
}

}  // namespace

void RunBlocking(const bench::Args& args) {
  const int64_t n = args.full ? 200000 : 50000;
  std::printf("=== bench_ablation_blocking (n = %lld, K forced to 8) ===\n",
              static_cast<long long>(n));
  DatasetOptions data;
  data.length = n;
  data.theta = 0.1;  // sparse uncertainty so long patterns still match
  data.seed = 5;
  const UncertainString s = GenerateUncertainString(data);

  SubstringIndex pow2 = BuildWith(s, BlockingMode::kPow2);
  SubstringIndex paper = BuildWith(s, BlockingMode::kPaperExact);
  SubstringIndex scan = BuildWith(s, BlockingMode::kScanOnly);

  bench::Table table("m");
  table.SetColumns({"pow2", "paper-exact", "scan-only", "avg matches"});
  for (const size_t m : {12, 24, 48, 96}) {
    const auto patterns = SamplePatterns(s, 100, m, 900 + m);
    std::vector<Match> out;
    // Warm-up: let kPaperExact build its lazy per-length level outside the
    // timed region (its one-off O(N) cost is reported via memory below).
    for (const auto& p : patterns) {
      (void)pow2.Query(p, 0.05, &out);
      (void)paper.Query(p, 0.05, &out);
      (void)scan.Query(p, 0.05, &out);
    }
    size_t matches = 0;
    const double pow2_ms = bench::TimeMs([&] {
      for (const auto& p : patterns) {
        (void)pow2.Query(p, 0.05, &out);
        matches += out.size();
      }
    });
    const double paper_ms = bench::TimeMs([&] {
      for (const auto& p : patterns) (void)paper.Query(p, 0.05, &out);
    });
    const double scan_ms = bench::TimeMs([&] {
      for (const auto& p : patterns) (void)scan.Query(p, 0.05, &out);
    });
    table.AddRow(std::to_string(m),
                 {pow2_ms * 1000 / patterns.size(),
                  paper_ms * 1000 / patterns.size(),
                  scan_ms * 1000 / patterns.size(),
                  static_cast<double>(matches) / patterns.size()});
  }
  table.Print("Long-pattern strategies (tau = 0.05)", "us/query");
  std::printf("\n  memory after workload: pow2 %.1f MB, paper-exact %.1f MB "
              "(lazy per-length levels), scan-only %.1f MB\n",
              pow2.MemoryUsage() / 1048576.0, paper.MemoryUsage() / 1048576.0,
              scan.MemoryUsage() / 1048576.0);
}

}  // namespace pti

int main(int argc, char** argv) {
  pti::RunBlocking(pti::bench::ParseArgs(argc, argv));
  return 0;
}
